#pragma once
// Deterministic pseudo-random generation for workload synthesis.
//
// Everything in the benchmark/test workloads must be reproducible across
// runs and machines, so we use a fixed SplitMix64 rather than std::mt19937
// (whose distributions are not guaranteed identical across libstdc++
// versions for floating-point output).

#include <cstdint>

namespace glaf {

/// SplitMix64: fast, well-distributed 64-bit PRNG. Deterministic by seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) for bound > 0 (modulo bias is acceptable
  /// for workload synthesis; bound is always far below 2^64).
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace glaf
