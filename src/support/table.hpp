#pragma once
// ASCII table rendering for benchmark harness output. The figure/table
// benches print rows in the same layout as the paper's tables so that the
// reproduction can be compared side by side with the publication.

#include <string>
#include <vector>

namespace glaf {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column ASCII table.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Set per-column alignment (defaults to left). Missing entries keep left.
  void set_alignment(std::vector<Align> alignment);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with +---+ borders and a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a fraction as e.g. "1.41x" (two decimals, trailing 'x').
std::string format_speedup(double speedup);

}  // namespace glaf
