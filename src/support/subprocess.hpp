#pragma once
// Shared subprocess / compiler-probe utility, used by the fuzz oracle's
// compiled-C backend and the JIT engine's kernel compilation. One popen
// wrapper with an explicit "did the process even start" bit — the
// original oracle-local helper silently returned an empty capture when
// popen itself failed, which was indistinguishable from a program that
// printed nothing.

#include <string>

namespace glaf {

/// Result of running one shell command with combined stdout+stderr
/// capture.
struct RunResult {
  bool started = false;   ///< popen succeeded and the command was spawned
  int exit_code = -1;     ///< WEXITSTATUS when the command exited; 128+sig
                          ///< when killed by a signal; -1 when !started
  std::string output;     ///< combined stdout+stderr

  /// The command started and exited 0.
  [[nodiscard]] bool ok() const { return started && exit_code == 0; }
};

/// Run `command` through the shell, capturing combined stdout+stderr.
RunResult run_command(const std::string& command);

/// Whether `cc` can be invoked (`cc --version` exits 0); cached per
/// command for the process lifetime.
bool cc_available(const std::string& cc);

/// First line of `cc --version` (cached), or "" when unavailable. The
/// JIT kernel cache folds this into its content key so objects compiled
/// by different compilers never alias.
const std::string& compiler_identity(const std::string& cc);

/// The system compiler command to use: `preferred` when nonempty, else
/// $GLAF_CC when set, else "cc". Shared by the JIT engine and the fuzz
/// tool so GLAF_CC redirects (or disables) every compiler-backed path.
std::string default_cc(const std::string& preferred = "");

/// Stable fingerprint of the host microarchitecture: "machine:cpu model"
/// from uname + /proc/cpuinfo (cached). The JIT kernel cache folds this
/// into the key of any object compiled with -march=native, so a cache
/// directory shared across hosts can never serve an object built for a
/// different CPU.
const std::string& host_arch_fingerprint();

}  // namespace glaf
