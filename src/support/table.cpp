#include "support/table.hpp"

#include <cassert>
#include <cstdio>

#include "support/strings.hpp"

namespace glaf {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), alignment_(headers_.size(), Align::kLeft) {}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment.resize(headers_.size(), Align::kLeft);
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size() && "row width must match headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto border = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) line += repeat("-", w + 2) + "+";
    line += "\n";
    return line;
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::string pad = repeat(" ", widths[c] - cell.size());
      if (alignment_[c] == Align::kRight) {
        line += " " + pad + cell + " |";
      } else {
        line += " " + cell + pad + " |";
      }
    }
    line += "\n";
    return line;
  };

  std::string out = border + render_row(headers_) + border;
  for (const auto& row : rows_) out += render_row(row);
  out += border;
  return out;
}

std::string format_speedup(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

}  // namespace glaf
