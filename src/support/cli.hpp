#pragma once
// Minimal command-line flag parsing for the bench/example binaries.
// Supports --name=value, --name value, and boolean --name forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace glaf {

/// Parses flags of the form --key[=value]; positional arguments are kept
/// in order. Unknown flags are retained (benches tolerate google-benchmark
/// flags passing through).
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace glaf
