#include "support/ulp.hpp"

#include <cmath>
#include <cstring>

namespace glaf {
namespace {

/// Map a double's bits onto a single monotone unsigned number line:
/// positive values land at sign-bit + magnitude, negative values at
/// sign-bit - magnitude. Monotone in the represented value, adjacent
/// representable values differ by exactly 1, and -0/+0 share one slot
/// (so -x to +x measures 2 * (x to 0), not 2 * (...) + 1).
std::uint64_t monotone_key(double x) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(x), "double must be 64-bit");
  std::memcpy(&u, &x, sizeof(u));
  constexpr std::uint64_t kSign = std::uint64_t{1} << 63;
  return (u & kSign) != 0 ? kSign - (u & ~kSign) : kSign + u;
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  const bool nan_a = std::isnan(a);
  const bool nan_b = std::isnan(b);
  if (nan_a && nan_b) return 0;  // payloads and NaN sign are irrelevant
  if (nan_a || nan_b) return kUlpIncomparable;
  if (a == b) return 0;  // covers the +0/-0 pair
  const std::uint64_t ka = monotone_key(a);
  const std::uint64_t kb = monotone_key(b);
  return ka > kb ? ka - kb : kb - ka;
}

bool ulp_close(double a, double b, std::uint64_t max_ulp, double rtol,
               double atol) {
  const std::uint64_t dist = ulp_distance(a, b);
  if (dist <= max_ulp) return true;
  if (dist == kUlpIncomparable) return false;  // exactly one NaN
  if (std::isinf(a) || std::isinf(b)) return false;
  return std::fabs(a - b) <= atol + rtol * std::fmax(std::fabs(a),
                                                     std::fabs(b));
}

}  // namespace glaf
