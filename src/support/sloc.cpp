#include "support/sloc.hpp"

#include "support/strings.hpp"

namespace glaf {
namespace {

bool is_fortran_code_line(std::string_view line) {
  const std::string_view t = trim(line);
  if (t.empty()) return false;
  if (t.front() != '!') return true;
  // OpenMP sentinel comments are semantically code.
  const std::string upper = to_upper(t.substr(0, 5));
  return upper == "!$OMP";
}

}  // namespace

int count_sloc(std::string_view source, SlocLanguage lang) {
  int count = 0;
  bool in_block_comment = false;
  for (const std::string& line : split_lines(source)) {
    const std::string_view t = trim(line);
    if (lang == SlocLanguage::kFortran) {
      if (is_fortran_code_line(t)) ++count;
      continue;
    }
    // C-family counting with whole-line block comment tracking.
    if (in_block_comment) {
      const std::size_t close = t.find("*/");
      if (close != std::string_view::npos) {
        in_block_comment = false;
        if (!trim(t.substr(close + 2)).empty()) ++count;
      }
      continue;
    }
    if (t.empty()) continue;
    if (starts_with(t, "//")) continue;
    if (starts_with(t, "/*")) {
      const std::size_t close = t.find("*/", 2);
      if (close == std::string_view::npos) {
        in_block_comment = true;
      } else if (!trim(t.substr(close + 2)).empty()) {
        ++count;
      }
      continue;
    }
    ++count;
  }
  return count;
}

}  // namespace glaf
