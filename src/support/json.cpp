#include "support/json.hpp"

#include <cmath>
#include <cstdio>

namespace glaf {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
}

void JsonWriter::open(char c) {
  comma();
  out_ += c;
  has_element_.push_back(false);
}

void JsonWriter::close(char c) {
  has_element_.pop_back();
  out_ += c;
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += json_quote(k);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma();
  out_ += json_quote(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
}

}  // namespace glaf
