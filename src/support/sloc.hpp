#pragma once
// Source-lines-of-code counting for generated code. Used by the Table 1
// reproduction, which reports per-subroutine SLOC of the FORTRAN that GLAF
// generates for the Synoptic SARB kernels.

#include <string>
#include <string_view>

namespace glaf {

/// Language family for comment recognition.
enum class SlocLanguage { kFortran, kC };

/// Count non-blank, non-comment lines. For Fortran, a line whose first
/// non-blank character is '!' is a comment, EXCEPT OpenMP sentinel lines
/// ("!$OMP ..."), which are counted as code (they change program behaviour).
/// For C, full-line "//" comments are excluded; block comments spanning
/// whole lines are excluded as well.
int count_sloc(std::string_view source, SlocLanguage lang);

}  // namespace glaf
