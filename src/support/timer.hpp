#pragma once
// Wall-clock timing for the benchmark harnesses.

#include <chrono>

namespace glaf {

/// Monotonic stopwatch; started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Run `fn` repeatedly until at least `min_seconds` has elapsed (and at
/// least `min_reps` times); return the best (minimum) per-rep seconds.
/// Min-of-reps is robust to scheduler noise on shared machines.
template <typename Fn>
double time_best(Fn&& fn, double min_seconds = 0.05, int min_reps = 3) {
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (reps < min_reps || total < min_seconds) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
    total += s;
    ++reps;
    if (reps > 1000000) break;  // degenerate zero-cost body
  }
  return best;
}

}  // namespace glaf
