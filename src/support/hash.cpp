#include "support/hash.hpp"

namespace glaf {
namespace {

// FNV-1a-128 per the published parameters:
//   offset basis = 144066263297769815596495629667062367629
//   prime        = 2^88 + 2^8 + 0x3b = 309485009821345068724781371
// Arithmetic is carried in four 32-bit limbs so the implementation does
// not depend on __int128 (and is endian-independent by construction).
struct U128 {
  std::uint32_t w[4] = {0, 0, 0, 0};  // w[0] = least significant
};

// offset basis = 0x6c62272e07bb014262b821756295c58d
constexpr U128 kOffset128 = {{0x6295c58du, 0x62b82175u, 0x07bb0142u,
                              0x6c62272eu}};
// prime = 0x0000000001000000000000000000013b
constexpr U128 kPrime128 = {{0x0000013bu, 0x00000000u, 0x01000000u,
                             0x00000000u}};

U128 mul128(const U128& a, const U128& b) {
  std::uint64_t acc[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    if (a.w[i] == 0) continue;
    for (int j = 0; j + i < 4; ++j) {
      acc[i + j] +=
          static_cast<std::uint64_t>(a.w[i]) * static_cast<std::uint64_t>(b.w[j]);
      // Propagate the high half immediately so acc never overflows:
      // each limb holds < 2^32 after carrying.
      if (i + j + 1 < 4) acc[i + j + 1] += acc[i + j] >> 32;
      acc[i + j] &= 0xffffffffu;
    }
  }
  U128 r;
  std::uint64_t carry = 0;
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t v = acc[k] + carry;
    r.w[k] = static_cast<std::uint32_t>(v & 0xffffffffu);
    carry = v >> 32;
  }
  return r;
}

U128 from_hash(const Hash128& h) {
  U128 u;
  u.w[0] = static_cast<std::uint32_t>(h.lo & 0xffffffffu);
  u.w[1] = static_cast<std::uint32_t>(h.lo >> 32);
  u.w[2] = static_cast<std::uint32_t>(h.hi & 0xffffffffu);
  u.w[3] = static_cast<std::uint32_t>(h.hi >> 32);
  return u;
}

Hash128 to_hash(const U128& u) {
  Hash128 h;
  h.lo = static_cast<std::uint64_t>(u.w[0]) |
         (static_cast<std::uint64_t>(u.w[1]) << 32);
  h.hi = static_cast<std::uint64_t>(u.w[2]) |
         (static_cast<std::uint64_t>(u.w[3]) << 32);
  return h;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state) {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnv1a64Prime;
  }
  return state;
}

Hash128 fnv1a128_offset() { return to_hash(kOffset128); }

Hash128 fnv1a128(std::string_view bytes, const Hash128& state) {
  U128 h = from_hash(state);
  for (const char c : bytes) {
    h.w[0] ^= static_cast<unsigned char>(c);
    h = mul128(h, kPrime128);
  }
  return to_hash(h);
}

Hash128 fnv1a128(std::string_view bytes) {
  return fnv1a128(bytes, fnv1a128_offset());
}

std::string hex_digest(const Hash128& h) {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t lane = i < 8 ? h.hi : h.lo;
    const int shift = 8 * (7 - (i % 8));
    const unsigned byte = static_cast<unsigned>((lane >> shift) & 0xffu);
    out[static_cast<std::size_t>(2 * i)] = kHex[byte >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = kHex[byte & 0xfu];
  }
  return out;
}

std::string content_digest(std::string_view bytes) {
  return hex_digest(fnv1a128(bytes));
}

}  // namespace glaf
