#pragma once
// Minimal JSON emission, shared by the machine-readable reports
// (`glafc --json`), the serve subsystem's stats endpoint, and the
// benches. Emission only — the repo has no JSON consumer; CI checks
// grep the output and external tools (jq, python) parse it.
//
// JsonWriter manages commas and nesting so report code reads linearly;
// json_quote is the escaping primitive for callers assembling JSON by
// hand. Doubles are printed with %.17g (round-trip exact); non-finite
// values become null, which strict parsers accept where a bare `inf`
// would not.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace glaf {

/// `s` as a JSON string literal, quotes included: control characters,
/// '"' and '\\' are escaped; everything else passes through byte-wise
/// (valid UTF-8 in, valid UTF-8 out).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Streaming JSON builder with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("qps"); w.value(12345.6);
///   w.key("kernels"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string json = std::move(w).str();
///
/// The writer does not validate call order beyond what the comma logic
/// needs; callers are expected to emit well-formed sequences.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Object key; the next value/begin_* call is its value.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// Splice a pre-rendered JSON fragment in value position (e.g. a
  /// nested report produced by another writer).
  void raw(std::string_view json);

  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  void open(char c);
  void close(char c);
  void comma();

  std::string out_;
  /// Whether the current nesting level already holds an element (one
  /// flag per open container; top-level uses index 0).
  std::vector<bool> has_element_{false};
  bool after_key_ = false;
};

}  // namespace glaf
