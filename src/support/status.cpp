#include "support/status.hpp"

namespace glaf {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kBusy: return "BUSY";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = glaf::to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace glaf
