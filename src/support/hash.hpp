#pragma once
// Stable content hashing. Two uses drive the requirements:
//
//  - the JIT kernel cache keys compiled shared objects by a digest of
//    (emitted source, compiler identity, flags): the digest must be
//    stable across processes and platforms, so it is pure arithmetic
//    over the bytes — no pointers, no std::hash, no locale;
//  - the fuzzer dedups generated programs by the digest of their
//    serialized text, so equal programs from different seeds are
//    executed once.
//
// Both FNV-1a widths are provided: the 64-bit lane for cheap in-memory
// dedup maps, and the 128-bit lane (hex digest) for on-disk cache keys
// where accidental collisions would silently alias two kernels.

#include <cstdint>
#include <string>
#include <string_view>

namespace glaf {

inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

/// FNV-1a over `bytes`, continuing from `state` (defaults to the FNV
/// offset basis, i.e. a fresh hash). Chain calls to hash several fields
/// without concatenating: h = fnv1a64(b, fnv1a64(a)).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t state = kFnv1a64Offset);

/// A 128-bit digest (FNV-1a-128).
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }
};

/// FNV-1a-128 over `bytes`, continuing from `state` (defaults to the
/// 128-bit FNV offset basis).
[[nodiscard]] Hash128 fnv1a128(std::string_view bytes);
[[nodiscard]] Hash128 fnv1a128(std::string_view bytes, const Hash128& state);

/// The 128-bit offset basis (exposed so tests can pin the constants).
[[nodiscard]] Hash128 fnv1a128_offset();

/// 32 lowercase hex characters, big-endian (hi lane first) — filesystem
/// and URL safe, fixed width.
[[nodiscard]] std::string hex_digest(const Hash128& h);

/// Convenience: hex digest of one buffer.
[[nodiscard]] std::string content_digest(std::string_view bytes);

}  // namespace glaf
