#pragma once
// Ulp-distance comparison for the opt emit tier's differential wall. The
// interp tier is compared bitwise; the opt tier (typed storage, -O3,
// contraction on) legitimately rounds differently, so its legs are held
// to a per-kernel budget measured in units-in-the-last-place — the
// tightest numeric contract that still admits reassociation-free
// compiler optimization.

#include <cstdint>

namespace glaf {

/// Sentinel distance for incomparable pairs (exactly one NaN).
inline constexpr std::uint64_t kUlpIncomparable = ~std::uint64_t{0};

/// Unsigned distance between two doubles on the monotone integer number
/// line of IEEE-754 (denormals and the ±0 pair are single steps, like
/// any other neighbors; DBL_MAX to +inf is one step).
///   - bit-identical values, the +0/-0 pair, and any two NaNs (payload
///     and sign ignored) are distance 0;
///   - exactly one NaN is kUlpIncomparable;
///   - mixed-sign finite pairs measure through zero (-x to +x is twice
///     the distance of x to 0), so a sign flip is never "close" unless
///     both values are tiny.
std::uint64_t ulp_distance(double a, double b);

/// The opt-tier comparator: true when the values are bit-identical /
/// both NaN, within `max_ulp` ulps, or (finite values only) within the
/// absolute/relative band `atol + rtol * max(|a|, |b|)`. The band covers
/// kernels whose error is better expressed relatively (long float
/// accumulations); pass rtol = atol = 0 for a pure ulp budget.
bool ulp_close(double a, double b, std::uint64_t max_ulp, double rtol = 0.0,
               double atol = 0.0);

}  // namespace glaf
