#pragma once
// Small string utilities shared by the code generators, table printers and
// diagnostics. Kept dependency-free (libstdc++ 12 lacks <format>).

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace glaf {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split `text` into lines ('\n'); a trailing newline yields no empty tail.
std::vector<std::string> split_lines(std::string_view text);

/// Join pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lower/upper-casing (code generators need FORTRAN keywords upper).
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Replace every occurrence of `from` in `text` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Repeat `unit` count times.
std::string repeat(std::string_view unit, std::size_t count);

/// Format a double the way source generators want it: shortest round-trip
/// representation, always containing a '.' or exponent so the literal stays
/// floating-point in the target language.
std::string format_double(double value);

/// Concatenate streamable values; the low-tech stand-in for std::format.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// True if `name` is a valid identifier in both FORTRAN and C
/// (letter first, then letters/digits/underscore; length <= 63).
bool is_valid_identifier(std::string_view name);

}  // namespace glaf
