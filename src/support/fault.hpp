#pragma once
// Deterministic fault injection for robustness testing. Code under test
// places named check points ("sites") on its failure-prone edges —
// socket reads, compile spawns, cache publishes — and calls
// fault::should_fail("site") there. Production runs pay one relaxed
// atomic load per check (the registry is disarmed); chaos tests and the
// GLAF_FAULT environment variable arm sites with a probability and an
// optional injection budget.
//
// Decisions are deterministic: the k-th check of a site fails iff
// hash(seed, site, k) maps below the site's probability, so a soak with
// a fixed seed injects the same faults at the same per-site occurrence
// indices on every run regardless of thread interleaving (threads only
// change WHICH thread draws occurrence k, not its verdict).
//
// Spec syntax (comma-separated):  site[:prob[:count]]
//   "serve.sock.read"             always fail that site
//   "serve.compile:0.5"           fail ~half the checks
//   "jit.cache.publish:1:2"       fail exactly the first two checks
// Environment: GLAF_FAULT holds the spec, GLAF_FAULT_SEED the seed
// (default 1). Programmatic tests use configure()/clear() directly.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace glaf::fault {

/// One armed site's configuration and counters (a stats() snapshot).
struct SiteStats {
  std::string site;
  double probability = 1.0;
  std::uint64_t max_injections = 0;  ///< 0 = unlimited
  std::uint64_t checks = 0;          ///< should_fail() calls observed
  std::uint64_t injections = 0;      ///< checks that returned true
};

/// Arm the registry from a spec string (replaces any previous
/// configuration). An empty spec disarms, same as clear().
Status configure(const std::string& spec, std::uint64_t seed = 1);

/// Disarm every site and drop all counters.
void clear();

/// True when at least one site is armed.
bool armed();

/// Snapshot of every armed site (sorted by site name).
std::vector<SiteStats> stats();

/// Injections so far at one site (0 when the site is not armed).
std::uint64_t injections(const std::string& site);

namespace detail {
extern std::atomic<bool> g_armed;
bool should_fail_slow(const char* site);
}  // namespace detail

/// The check point: true when the registry decides this occurrence of
/// `site` must fail. Disarmed cost is one relaxed atomic load.
inline bool should_fail(const char* site) {
  return detail::g_armed.load(std::memory_order_relaxed) &&
         detail::should_fail_slow(site);
}

}  // namespace glaf::fault
