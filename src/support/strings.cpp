#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace glaf {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out = split(text, '\n');
  if (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string repeat(std::string_view unit, std::size_t count) {
  std::string out;
  out.reserve(unit.size() * count);
  for (std::size_t i = 0; i < count; ++i) out.append(unit);
  return out;
}

std::string format_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  // %.17g round-trips; try shorter representations first for readability.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  std::string out(buf);
  // Ensure the literal reads as floating-point in generated source.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

bool is_valid_identifier(std::string_view name) {
  if (name.empty() || name.size() > 63) return false;
  if (std::isalpha(static_cast<unsigned char>(name.front())) == 0) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '_';
  });
}

}  // namespace glaf
