#include "support/cli.hpp"

#include <cstdlib>

#include "support/strings.hpp"

namespace glaf {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return flags_.count(key) != 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string v = to_lower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace glaf
