#include "support/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace glaf::fault {

namespace {

struct Site {
  double probability = 1.0;
  std::uint64_t max_injections = 0;  // 0 = unlimited
  std::uint64_t checks = 0;
  std::uint64_t injections = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Site> sites;
  std::uint64_t seed = 1;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Deterministic verdict for occurrence `index` of `site`: one
/// SplitMix64 draw seeded by (seed, site-name hash, index). Independent
/// of thread interleaving — occurrence indices are handed out under the
/// registry mutex.
bool draw(std::uint64_t seed, const std::string& site, std::uint64_t index,
          double probability) {
  SplitMix64 rng(seed ^ fnv1a64(site) ^ (index * 0x9E3779B97F4A7C15ULL));
  return rng.next_double() < probability;
}

/// Parse one "site[:prob[:count]]" token into the map.
Status parse_token(const std::string& token, std::map<std::string, Site>& out) {
  const std::size_t colon1 = token.find(':');
  const std::string name = token.substr(0, colon1);
  if (name.empty()) {
    return invalid_argument(cat("fault spec token '", token,
                                "' has an empty site name"));
  }
  Site site;
  if (colon1 != std::string::npos) {
    const std::size_t colon2 = token.find(':', colon1 + 1);
    const std::string prob_text =
        token.substr(colon1 + 1, colon2 == std::string::npos
                                     ? std::string::npos
                                     : colon2 - colon1 - 1);
    char* end = nullptr;
    site.probability = std::strtod(prob_text.c_str(), &end);
    if (prob_text.empty() || end == nullptr || *end != '\0' ||
        site.probability < 0.0 || site.probability > 1.0) {
      return invalid_argument(cat("fault spec '", token,
                                  "': probability must be in [0, 1]"));
    }
    if (colon2 != std::string::npos) {
      const std::string count_text = token.substr(colon2 + 1);
      site.max_injections = std::strtoull(count_text.c_str(), &end, 10);
      if (count_text.empty() || end == nullptr || *end != '\0') {
        return invalid_argument(cat("fault spec '", token,
                                    "': count must be an integer"));
      }
    }
  }
  out[name] = site;
  return Status::ok();
}

/// Arm from the environment exactly once, before main() runs user code.
const bool env_armed = [] {
  const char* spec = std::getenv("GLAF_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  std::uint64_t seed = 1;
  if (const char* s = std::getenv("GLAF_FAULT_SEED");
      s != nullptr && *s != '\0') {
    seed = std::strtoull(s, nullptr, 10);
  }
  // A malformed env spec must not crash the process this early; it
  // simply stays disarmed (tests use the programmatic API, which does
  // report the error).
  (void)configure(spec, seed);
  return true;
}();

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

bool should_fail_slow(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  const std::uint64_t index = s.checks++;
  if (s.max_injections != 0 && s.injections >= s.max_injections) {
    return false;
  }
  const bool fail = draw(r.seed, it->first, index, s.probability);
  if (fail) ++s.injections;
  return fail;
}

}  // namespace detail

Status configure(const std::string& spec, std::uint64_t seed) {
  std::map<std::string, Site> sites;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(at, comma - at);
    if (!token.empty()) {
      if (Status s = parse_token(token, sites); !s.is_ok()) return s;
    }
    at = comma + 1;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites = std::move(sites);
  r.seed = seed;
  detail::g_armed.store(!r.sites.empty(), std::memory_order_relaxed);
  return Status::ok();
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

std::vector<SiteStats> stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SiteStats> out;
  out.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites) {
    SiteStats s;
    s.site = name;
    s.probability = site.probability;
    s.max_injections = site.max_injections;
    s.checks = site.checks;
    s.injections = site.injections;
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t injections(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it != r.sites.end() ? it->second.injections : 0;
}

}  // namespace glaf::fault
