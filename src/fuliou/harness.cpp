#include "fuliou/harness.hpp"

namespace glaf::fuliou {

namespace {

Status set_field(Machine& m, const std::string& name,
                 const std::vector<double>& data) {
  return m.set_array(name, data);
}

}  // namespace

Status load_profile(Machine& machine, const AtmosphereProfile& profile) {
  if (Status s = set_field(machine, "pressure", profile.pressure); !s) return s;
  if (Status s = set_field(machine, "temperature", profile.temperature); !s) {
    return s;
  }
  if (Status s = set_field(machine, "humidity", profile.humidity); !s) return s;
  if (Status s = set_field(machine, "o3", profile.o3); !s) return s;
  if (Status s = set_field(machine, "cloud_frac", profile.cloud_frac); !s) {
    return s;
  }
  if (Status s = set_field(machine, "tau", profile.tau); !s) return s;
  if (Status s = machine.set_scalar("tsfc", profile.tsfc); !s) return s;
  if (Status s = machine.set_scalar("albedo", profile.albedo); !s) return s;
  return machine.set_scalar("cosz", profile.cosz);
}

SarbOutputs extract_outputs(const Machine& machine) {
  SarbOutputs out;
  const auto grab = [&](const std::string& name, std::vector<double>* dst) {
    const auto v = machine.array(name);
    if (v.is_ok()) *dst = v.value();
  };
  grab("planck", &out.planck);
  grab("lw_flux", &out.lw_flux);
  grab("lw_entropy", &out.lw_entropy);
  grab("sw_flux", &out.sw_flux);
  grab("sw_entropy", &out.sw_entropy);
  grab("adjusted_flux", &out.adjusted_flux);
  grab("baseline", &out.baseline);
  grab("wc_flux", &out.wc_flux);
  const auto et = machine.scalar("entropy_total");
  out.entropy_total = et.is_ok() ? et.value() : 0.0;
  return out;
}

StatusOr<SarbOutputs> run_glaf_sarb(Machine& machine,
                                    const AtmosphereProfile& profile) {
  if (Status s = load_profile(machine, profile); !s) return s;
  const auto r = machine.call("entropy_interface");
  if (!r.is_ok()) return r.status();
  return extract_outputs(machine);
}

int count_statements(const Step& step) {
  int count = 0;
  visit_stmts(step.body, [&](const Stmt&) { ++count; });
  return count;
}

std::vector<LoopInfo> sarb_loop_inventory(const Program& program,
                                          const ProgramAnalysis& analysis) {
  std::vector<LoopInfo> out;
  for (const Function& fn : program.functions) {
    const auto it = analysis.verdicts.find(fn.id);
    if (it == analysis.verdicts.end()) continue;
    for (std::size_t s = 0; s < fn.steps.size(); ++s) {
      LoopInfo info;
      info.function = fn.name;
      info.step = fn.steps[s].name;
      info.verdict = it->second.at(s);
      info.stmt_count = count_statements(fn.steps[s]);
      out.push_back(std::move(info));
    }
  }
  return out;
}

}  // namespace glaf::fuliou
