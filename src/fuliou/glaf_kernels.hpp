#pragma once
// The six Synoptic SARB subroutines of Table 1, authored in the GLAF IR
// via the builder API (the GPI stand-in). Formulas mirror
// fuliou/reference.cpp operation-for-operation, so serial interpretation
// reproduces the reference bit-for-bit.
//
// The program exercises every §3 integration feature exactly where the
// real code would need it:
//   - per-level inputs come from the existing module "fuliou_input" (§3.1)
//   - tsfc is an element of the TYPE variable fo from that module (§3.5)
//   - albedo/cosz live in COMMON /sw_in/ (§3.2)
//   - all intermediates are module-scope variables (§3.3) because GLAF's
//     interior-loop-as-function structure needs them visible across steps
//   - every subprogram is a SUBROUTINE (void) with generated CALLs (§3.4)
//   - ABS/ALOG/EXP/MAX library calls exercise §3.6.

#include "core/builder.hpp"
#include "core/program.hpp"
#include "fuliou/profile.hpp"

namespace glaf::fuliou {

/// Build the complete SARB kernel program ("sarb_kernels" module).
/// Functions: lw_spectral_integration, longwave_entropy_model,
/// sw_spectral_integration, shortwave_entropy_model, adjust2, and the
/// driver entropy_interface. Every per-level extent and loop bound is
/// symbolic over the `n_levels` grid, whose init is `num_levels` — the
/// benchmarks scale the atmosphere this way to give the threaded
/// engines enough work per dispatch.
Program build_sarb_program(int num_levels = kNumLevels);

/// Names of the six Table 1 subroutines in paper order.
const std::vector<std::string>& table1_subroutines();

/// Paper-reported SLOC per subroutine (Table 1), for side-by-side output.
int paper_sloc(const std::string& subroutine);

}  // namespace glaf::fuliou
