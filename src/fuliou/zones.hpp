#pragma once
// Synoptic-hour zone decomposition (paper §2.2).
//
// "For Synoptic SARB, the earth is split into multiple zones that run
// parallel to the equator. Computation for each zone can occur
// independently (and hence in parallel) ... The execution of each zone
// takes time that is proportional to its size (i.e., zones closer to the
// equator are naturally larger than zones near the poles). Prior to our
// introduction to the code, Synoptic SARB only used (coarse-grained)
// inter-zone parallelism via MPI."
//
// This module provides the zone model and the rank-level schedulers that
// stand in for the MPI layer, so the examples can combine inter-zone
// (coarse) with the paper's new intra-zone (OpenMP) parallelism.

#include <cstdint>
#include <vector>

namespace glaf::fuliou {

/// One latitude band. `columns` is the number of atmospheric columns in
/// the zone — the unit of serial work (each column is one profile run).
struct Zone {
  int index = 0;
  double latitude_deg = 0.0;  ///< band-center latitude
  int columns = 0;            ///< ~ cos(latitude): equator zones largest
  std::uint64_t seed = 0;     ///< deterministic profile seed base
};

/// Split the sphere into `n_zones` latitude bands; the band at the
/// equator holds `equator_columns` columns and the counts fall off with
/// cos(latitude) (minimum 1).
std::vector<Zone> make_zones(int n_zones, int equator_columns);

/// A rank-level schedule of zones (the MPI stand-in).
struct Schedule {
  std::vector<std::vector<int>> zones_per_rank;  ///< zone indices per rank
  double makespan = 0.0;     ///< max per-rank work (columns)
  double total_work = 0.0;   ///< sum of all columns
  /// makespan / (total/ranks): 1.0 = perfectly balanced.
  double imbalance = 1.0;
};

/// Contiguous block assignment (the naive legacy decomposition).
Schedule schedule_block(const std::vector<Zone>& zones, int ranks);

/// Longest-processing-time greedy (sorted, largest first onto the least
/// loaded rank) — the classic 4/3-approximation.
Schedule schedule_lpt(const std::vector<Zone>& zones, int ranks);

/// Modeled synoptic-hour wall time (in column-units): rank makespan
/// divided by the intra-zone speedup each column enjoys (1.0 = the legacy
/// serial-within-zone behaviour; >1 = the paper's OpenMP kernels).
double synoptic_hour_time(const Schedule& schedule, double intra_zone_speedup);

}  // namespace glaf::fuliou
