#pragma once
// The "original serial" Synoptic SARB kernels — the hand-written reference
// implementation the GLAF-generated code is compared against, mirroring
// the paper's §4.1.1 methodology (step-by-step unit testing plus a
// code-wide side-by-side comparison).
//
// Every formula here is mirrored exactly (same operation order) by the
// GLAF IR program in glaf_kernels.hpp, so serial interpretation must agree
// bit-for-bit and parallel interpretation within reduction-reassociation
// tolerance.

#include "fuliou/profile.hpp"

namespace glaf::fuliou {

/// Intermediate arrays shared between the subroutines — module-scope
/// variables in the FORTRAN original (§3.3).
struct Workspace {
  std::vector<double> od;        ///< [kNumLevels] optical depth per layer
  std::vector<double> w0;        ///< [kNumLevels] single-scatter albedo
  std::vector<double> t_layer;   ///< [kNumLevels]
  std::vector<double> tsfc_arr;  ///< [kNumLevels]
  std::vector<double> entropy2;  ///< [kNumLevels]
  std::vector<double> trans;     ///< [kNumLwBands * kNumLevels]
  std::vector<double> absorb;    ///< [kNumLwBands * kNumLevels]
  std::vector<double> emiss;     ///< [kNumLwBands * kNumLevels]
  std::vector<double> swsrc;     ///< [kNumSwBands * kNumLevels]
  double od_total = 0.0;
  SarbOutputs out;

  Workspace();
};

/// Table 1 subroutines. entropy_interface() is the driver that calls the
/// other five in order, exactly as in the GLAF program.
void lw_spectral_integration(const AtmosphereProfile& p, Workspace& ws);
void longwave_entropy_model(const AtmosphereProfile& p, Workspace& ws);
void sw_spectral_integration(const AtmosphereProfile& p, Workspace& ws);
void shortwave_entropy_model(const AtmosphereProfile& p, Workspace& ws);
void adjust2(const AtmosphereProfile& p, Workspace& ws);

/// EXTENSION (not in Table 1): the window-channel (8-12um) flux profile
/// the paper's 2.2 names as SARB's third output. Requires planck/trans
/// from the longwave model; call after entropy_interface().
void window_channel_model(const AtmosphereProfile& p, Workspace& ws);
void entropy_interface(const AtmosphereProfile& p, Workspace& ws);

/// Convenience: fresh workspace, run the driver, return the outputs.
SarbOutputs run_reference(const AtmosphereProfile& p);

}  // namespace glaf::fuliou
