#include "fuliou/profile.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"

namespace glaf::fuliou {

AtmosphereProfile make_profile(std::uint64_t seed, int num_levels) {
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  AtmosphereProfile p;
  p.pressure.resize(num_levels);
  p.temperature.resize(num_levels);
  p.humidity.resize(num_levels);
  p.o3.resize(num_levels);
  p.cloud_frac.resize(num_levels);
  p.tau.resize(num_levels);
  for (int k = 0; k < num_levels; ++k) {
    // Level 0 = top of atmosphere, level num_levels-1 = surface.
    const double frac = static_cast<double>(k) / (num_levels - 1);
    p.pressure[k] = 1.0 + 1012.0 * frac * frac;  // quadratic with height
    p.temperature[k] = 190.0 + 100.0 * frac + rng.uniform(-3.0, 3.0);
    p.humidity[k] = std::clamp(frac * rng.uniform(0.2, 0.9), 0.0, 1.0);
    p.o3[k] = std::exp(-std::pow(frac - 0.15, 2) / 0.02) + rng.uniform(0.0, 0.05);
    // Clouds in discrete decks, as in real profiles.
    p.cloud_frac[k] = rng.next_double() < 0.3 ? rng.uniform(0.55, 1.0)
                                              : rng.uniform(0.0, 0.45);
    p.tau[k] = rng.uniform(0.01, 0.4) + 2.0 * p.cloud_frac[k] * frac;
  }
  p.tsfc = 270.0 + rng.uniform(0.0, 35.0);
  p.albedo = rng.uniform(0.05, 0.6);
  p.cosz = rng.uniform(0.05, 1.0);
  return p;
}

SarbOutputs::SarbOutputs()
    : planck(static_cast<std::size_t>(kNumLwBands) * kNumLevels, 0.0),
      lw_flux(static_cast<std::size_t>(kNumHemis) * kNumLevels, 0.0),
      lw_entropy(kNumLevels, 0.0),
      sw_flux(kNumLevels, 0.0),
      sw_entropy(kNumLevels, 0.0),
      adjusted_flux(kNumLevels, 0.0),
      baseline(kNumLevels, 0.0),
      wc_flux(kNumLevels, 0.0) {}

namespace {

double field_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  if (a.size() != b.size()) return 1e300;
  return m;
}

}  // namespace

double max_abs_diff(const SarbOutputs& a, const SarbOutputs& b) {
  double m = 0.0;
  m = std::max(m, field_diff(a.planck, b.planck));
  m = std::max(m, field_diff(a.lw_flux, b.lw_flux));
  m = std::max(m, field_diff(a.lw_entropy, b.lw_entropy));
  m = std::max(m, field_diff(a.sw_flux, b.sw_flux));
  m = std::max(m, field_diff(a.sw_entropy, b.sw_entropy));
  m = std::max(m, field_diff(a.adjusted_flux, b.adjusted_flux));
  m = std::max(m, field_diff(a.baseline, b.baseline));
  m = std::max(m, field_diff(a.wc_flux, b.wc_flux));
  m = std::max(m, std::fabs(a.entropy_total - b.entropy_total));
  return m;
}

}  // namespace glaf::fuliou
