#pragma once
// Host-side harness around the GLAF SARB program: binds synthetic
// profiles to the program's Global Scope grids (playing the role of the
// legacy FORTRAN modules / COMMON blocks providing real data), runs the
// driver through the interpreter, and extracts the outputs for the
// side-by-side comparison against the hand-written reference (§4.1.1).

#include <string>
#include <vector>

#include "analysis/parallelize.hpp"
#include "fuliou/profile.hpp"
#include "interp/machine.hpp"

namespace glaf::fuliou {

/// Copy a profile into the machine's global grids (the "existing module"
/// and COMMON-block variables).
Status load_profile(Machine& machine, const AtmosphereProfile& profile);

/// Read every output grid back out.
SarbOutputs extract_outputs(const Machine& machine);

/// load_profile + CALL entropy_interface + extract. Status-bearing.
StatusOr<SarbOutputs> run_glaf_sarb(Machine& machine,
                                    const AtmosphereProfile& profile);

/// One analyzed loop of the SARB program, for Table 2 and the performance
/// model.
struct LoopInfo {
  std::string function;
  std::string step;
  StepVerdict verdict;
  int stmt_count = 0;  ///< statements in the body (recursive)
};

/// Every step of every SARB subroutine with its verdict and size.
std::vector<LoopInfo> sarb_loop_inventory(const Program& program,
                                          const ProgramAnalysis& analysis);

/// Recursive statement count of a step body.
int count_statements(const Step& step);

}  // namespace glaf::fuliou
