#pragma once
// Synthetic atmosphere profiles for the Fu-Liou-style radiative-transfer
// substrate.
//
// SUBSTITUTION NOTE (see DESIGN.md): NASA's Synoptic SARB code and the
// fuliou library are not distributable, so the case study runs on a
// synthetic radiative-transfer kernel set with the same loop structure:
// 60 atmosphere levels, 12 longwave bands, 6 shortwave bands, and the two
// large 2x60 doubly-nested loops the paper highlights (COLLAPSE(2) over
// 120 iterations).

#include <cstdint>
#include <vector>

namespace glaf::fuliou {

/// Structural constants shared by the reference code, the GLAF kernels and
/// the benchmarks.
inline constexpr int kNumLevels = 60;   ///< atmosphere levels
inline constexpr int kNumLwBands = 12;  ///< longwave spectral bands
inline constexpr int kNumSwBands = 6;   ///< shortwave spectral bands
inline constexpr int kNumHemis = 2;     ///< up/down hemispheres

/// One zone's input state: per-level fields plus surface scalars. In the
/// real Synoptic SARB these come from existing FORTRAN modules and COMMON
/// blocks — which is how the GLAF program imports them (§3.1/§3.2/§3.5).
struct AtmosphereProfile {
  std::vector<double> pressure;    ///< [kNumLevels] hPa-ish
  std::vector<double> temperature; ///< [kNumLevels] K
  std::vector<double> humidity;    ///< [kNumLevels] relative, 0..1
  std::vector<double> o3;          ///< [kNumLevels] arbitrary units
  std::vector<double> cloud_frac;  ///< [kNumLevels] 0..1
  std::vector<double> tau;         ///< [kNumLevels] optical depth per layer
  double tsfc = 288.0;             ///< surface temperature (TYPE element)
  double albedo = 0.3;             ///< COMMON /sw_in/
  double cosz = 0.5;               ///< cosine of solar zenith, COMMON /sw_in/
};

/// Deterministically synthesize a plausible profile for `seed` (one seed
/// per zone/synoptic hour in the benchmarks). `num_levels` sizes the
/// per-level fields and must match the `build_sarb_program` it feeds.
AtmosphereProfile make_profile(std::uint64_t seed,
                               int num_levels = kNumLevels);

/// All outputs the six subroutines produce (the side-by-side comparison
/// checks every field).
struct SarbOutputs {
  std::vector<double> planck;        ///< [kNumLwBands * kNumLevels]
  std::vector<double> lw_flux;       ///< [kNumHemis * kNumLevels]
  std::vector<double> lw_entropy;    ///< [kNumLevels]
  std::vector<double> sw_flux;       ///< [kNumLevels]
  std::vector<double> sw_entropy;    ///< [kNumLevels]
  std::vector<double> adjusted_flux; ///< [kNumLevels]
  std::vector<double> baseline;      ///< [kNumLevels]
  /// Window-channel (8-12um) flux — the third profile SARB computes
  /// (paper 2.2); an extension beyond the six Table 1 kernels.
  std::vector<double> wc_flux;       ///< [kNumLevels]
  double entropy_total = 0.0;

  SarbOutputs();
};

/// Max absolute elementwise difference across every output field.
double max_abs_diff(const SarbOutputs& a, const SarbOutputs& b);

}  // namespace glaf::fuliou
