#include "fuliou/zones.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace glaf::fuliou {

std::vector<Zone> make_zones(int n_zones, int equator_columns) {
  std::vector<Zone> zones;
  zones.reserve(static_cast<std::size_t>(std::max(0, n_zones)));
  for (int z = 0; z < n_zones; ++z) {
    // Band centers from (almost) -90 to +90 degrees.
    const double lat =
        -90.0 + 180.0 * (static_cast<double>(z) + 0.5) / n_zones;
    Zone zone;
    zone.index = z;
    zone.latitude_deg = lat;
    zone.columns = std::max(
        1, static_cast<int>(std::lround(
               equator_columns * std::cos(lat * M_PI / 180.0))));
    zone.seed = static_cast<std::uint64_t>(z) * 7919u + 17u;
    zones.push_back(zone);
  }
  return zones;
}

namespace {

Schedule finalize(std::vector<std::vector<int>> assignment,
                  const std::vector<Zone>& zones, int ranks) {
  Schedule s;
  s.zones_per_rank = std::move(assignment);
  s.total_work = 0.0;
  for (const Zone& z : zones) s.total_work += z.columns;
  for (const auto& rank_zones : s.zones_per_rank) {
    double work = 0.0;
    for (const int idx : rank_zones) {
      work += zones[static_cast<std::size_t>(idx)].columns;
    }
    s.makespan = std::max(s.makespan, work);
  }
  const double ideal = ranks > 0 ? s.total_work / ranks : s.total_work;
  s.imbalance = ideal > 0.0 ? s.makespan / ideal : 1.0;
  return s;
}

}  // namespace

Schedule schedule_block(const std::vector<Zone>& zones, int ranks) {
  ranks = std::max(1, ranks);
  std::vector<std::vector<int>> assignment(static_cast<std::size_t>(ranks));
  const std::size_t n = zones.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rank = i * static_cast<std::size_t>(ranks) / n;
    assignment[rank].push_back(zones[i].index);
  }
  return finalize(std::move(assignment), zones, ranks);
}

Schedule schedule_lpt(const std::vector<Zone>& zones, int ranks) {
  ranks = std::max(1, ranks);
  std::vector<int> order(zones.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int ca = zones[static_cast<std::size_t>(a)].columns;
    const int cb = zones[static_cast<std::size_t>(b)].columns;
    return ca != cb ? ca > cb : a < b;  // deterministic tie-break
  });
  std::vector<std::vector<int>> assignment(static_cast<std::size_t>(ranks));
  std::vector<double> load(static_cast<std::size_t>(ranks), 0.0);
  for (const int idx : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[lightest].push_back(zones[static_cast<std::size_t>(idx)].index);
    load[lightest] += zones[static_cast<std::size_t>(idx)].columns;
  }
  return finalize(std::move(assignment), zones, ranks);
}

double synoptic_hour_time(const Schedule& schedule,
                          double intra_zone_speedup) {
  return schedule.makespan / std::max(1e-12, intra_zone_speedup);
}

}  // namespace glaf::fuliou
