#include "fuliou/reference.hpp"

#include <algorithm>
#include <cmath>

namespace glaf::fuliou {

namespace {
constexpr int NL = kNumLevels;
constexpr int NB = kNumLwBands;
constexpr int NSB = kNumSwBands;
constexpr int NH = kNumHemis;

inline std::size_t at(int row, int col) {
  return static_cast<std::size_t>(row) * NL + static_cast<std::size_t>(col);
}
}  // namespace

Workspace::Workspace()
    : od(NL, 0.0),
      w0(NL, 0.0),
      t_layer(NL, 0.0),
      tsfc_arr(NL, 0.0),
      entropy2(NL, 0.0),
      trans(static_cast<std::size_t>(NB) * NL, 0.0),
      absorb(static_cast<std::size_t>(NB) * NL, 0.0),
      emiss(static_cast<std::size_t>(NB) * NL, 0.0),
      swsrc(static_cast<std::size_t>(NSB) * NL, 0.0) {}

void lw_spectral_integration(const AtmosphereProfile& p, Workspace& ws) {
  // ls1: zero-initialization loop (InitZero class in the paper's taxonomy).
  for (int k = 0; k < NL; ++k) {
    ws.out.lw_flux[at(0, k)] = 0.0;
    ws.out.lw_flux[at(1, k)] = 0.0;
  }
  // ls2: Planck-like source per band and level (SimpleDouble).
  for (int b = 0; b < NB; ++b) {
    for (int k = 0; k < NL; ++k) {
      ws.out.planck[at(b, k)] =
          0.5 * std::exp(-(std::fabs(p.temperature[k] - 250.0) /
                           (30.0 + b))) +
          0.01 * (b + 1);
    }
  }
  // ls3: seed downward flux from the first three bands (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.lw_flux[at(1, k)] = ws.out.planck[at(0, k)] * 0.5 +
                               ws.out.planck[at(1, k)] * 0.25 +
                               ws.out.planck[at(2, k)] * 0.125;
  }
  // ls4: broadcast of the surface temperature (Broadcast).
  for (int k = 0; k < NL; ++k) {
    ws.tsfc_arr[k] = p.tsfc;
  }
}

void longwave_entropy_model(const AtmosphereProfile& p, Workspace& ws) {
  // le0: straight-line reset of the module-scope accumulator.
  ws.od_total = 0.0;
  // le1: zero initializations (InitZero).
  for (int k = 0; k < NL; ++k) {
    ws.out.lw_entropy[k] = 0.0;
    ws.od[k] = 0.0;
    ws.entropy2[k] = 0.0;
  }
  // le2: broadcast surface temperature into the layer array (Broadcast).
  for (int k = 0; k < NL; ++k) {
    ws.t_layer[k] = p.tsfc;
  }
  // le3: gaseous + aerosol optical depth (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.od[k] = p.tau[k] * (1.0 + 0.1 * p.humidity[k]) + 0.001 * p.o3[k] +
               0.0001 * p.pressure[k] / 1000.0;
  }
  // le4: single-scattering albedo (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.w0[k] = 0.5 + 0.4 * p.cloud_frac[k];
  }
  // le5: column optical depth (SimpleSingle with a sum reduction).
  for (int k = 0; k < NL; ++k) {
    ws.od_total = ws.od_total + ws.od[k];
  }
  // le6: band transmissivities (SimpleDouble).
  for (int b = 0; b < NB; ++b) {
    for (int k = 0; k < NL; ++k) {
      ws.trans[at(b, k)] = std::exp(-(ws.od[k] * (1.0 + 0.05 * b)));
    }
  }
  // le6b: band absorptivities (SimpleDouble).
  for (int b = 0; b < NB; ++b) {
    for (int k = 0; k < NL; ++k) {
      ws.absorb[at(b, k)] = 1.0 - ws.trans[at(b, k)];
    }
  }
  // le6c: banded emission (SimpleDouble).
  for (int b = 0; b < NB; ++b) {
    for (int k = 0; k < NL; ++k) {
      ws.emiss[at(b, k)] = ws.out.planck[at(b, k)] * ws.absorb[at(b, k)];
    }
  }
  // le7: FIRST LARGE COMPLEX LOOP (2 x 60 iterations, data-dependent
  // branching on cloud cover — the compiler cannot auto-parallelize this;
  // GLAF keeps the OMP directive with COLLAPSE(2), paper §4.1.2).
  for (int h = 0; h < NH; ++h) {
    for (int k = 0; k < NL; ++k) {
      double src = ws.out.planck[at(h * 3, k)];
      if (p.cloud_frac[k] > 0.5) {
        src = src * (1.0 - ws.w0[k]) + 0.1 * ws.trans[at(h * 3, k)];
        ws.out.lw_flux[at(h, k)] =
            ws.out.lw_flux[at(h, k)] + src * (1.0 + 0.2 * h);
      } else {
        src = src + ws.w0[k] * 0.05;
        ws.out.lw_flux[at(h, k)] =
            ws.out.lw_flux[at(h, k)] + src * ws.trans[at(h, k)];
      }
      ws.out.lw_entropy[k] =
          ws.out.lw_entropy[k] + src / std::max(ws.t_layer[k], 1.0);
    }
  }
  // le8: SECOND LARGE COMPLEX LOOP (2 x 60, nested branch ladder).
  for (int h = 0; h < NH; ++h) {
    for (int k = 0; k < NL; ++k) {
      double wgt = ws.trans[at(h * 2, k)] * ws.w0[k];
      if (ws.od[k] > ws.od_total / 60.0) {
        ws.out.lw_flux[at(h, k)] =
            ws.out.lw_flux[at(h, k)] + std::log(1.0 + wgt);
      } else {
        if (wgt > 0.2) {
          ws.out.lw_flux[at(h, k)] = ws.out.lw_flux[at(h, k)] + wgt * 0.5;
        } else {
          ws.out.lw_flux[at(h, k)] = ws.out.lw_flux[at(h, k)] + wgt * wgt;
        }
      }
      ws.entropy2[k] = ws.entropy2[k] + wgt / (1.0 + h);
    }
  }
  // le9: fold the secondary entropy term in (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.lw_entropy[k] = ws.out.lw_entropy[k] + ws.entropy2[k] * 0.5;
  }
  // le9b: add the first three emission bands to the upward flux
  // (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.lw_flux[at(0, k)] = ws.out.lw_flux[at(0, k)] +
                               ws.emiss[at(0, k)] + ws.emiss[at(1, k)] +
                               ws.emiss[at(2, k)];
  }
}

void sw_spectral_integration(const AtmosphereProfile& p, Workspace& ws) {
  // ss1: zero initialization (InitZero).
  for (int k = 0; k < NL; ++k) {
    ws.out.sw_flux[k] = 0.0;
  }
  // ss2: per-band downward shortwave source (SimpleDouble).
  for (int sb = 0; sb < NSB; ++sb) {
    for (int k = 0; k < NL; ++k) {
      ws.swsrc[at(sb, k)] = p.cosz *
                            std::exp(-(p.tau[k] * (0.3 + 0.1 * sb))) *
                            (1.0 - p.albedo);
    }
  }
  // ss3: spectral sum (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.sw_flux[k] = ws.swsrc[at(0, k)] + ws.swsrc[at(1, k)] +
                        ws.swsrc[at(2, k)] + ws.swsrc[at(3, k)] +
                        ws.swsrc[at(4, k)] + ws.swsrc[at(5, k)];
  }
}

void shortwave_entropy_model(const AtmosphereProfile& p, Workspace& ws) {
  // se1: entropy flux = energy flux over temperature (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.sw_entropy[k] =
        ws.out.sw_flux[k] / std::max(p.temperature[k], 1.0);
  }
}

void adjust2(const AtmosphereProfile& p, Workspace& ws) {
  (void)p;
  // a1: net adjusted flux (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.adjusted_flux[k] = ws.out.lw_flux[at(0, k)] -
                              ws.out.lw_flux[at(1, k)] + ws.out.sw_flux[k];
  }
  // a2: clamp at zero (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.adjusted_flux[k] = std::max(ws.out.adjusted_flux[k], 0.0);
  }
  // a3: broadcast of the top-of-atmosphere value (Broadcast).
  for (int k = 0; k < NL; ++k) {
    ws.out.baseline[k] = ws.out.adjusted_flux[0];
  }
}

void window_channel_model(const AtmosphereProfile& p, Workspace& ws) {
  // wc1: zero (InitZero).
  for (int k = 0; k < NL; ++k) {
    ws.out.wc_flux[k] = 0.0;
  }
  // wc2: accumulate the atmospheric-window bands 7..9 (SimpleDouble).
  for (int b = 7; b <= 9; ++b) {
    for (int k = 0; k < NL; ++k) {
      ws.out.wc_flux[k] = ws.out.wc_flux[k] +
                          ws.out.planck[at(b, k)] * ws.trans[at(b, k)] * 0.8;
    }
  }
  // wc3: cloud masking of the window (SimpleSingle).
  for (int k = 0; k < NL; ++k) {
    ws.out.wc_flux[k] = ws.out.wc_flux[k] * (1.0 - 0.3 * p.cloud_frac[k]);
  }
}

void entropy_interface(const AtmosphereProfile& p, Workspace& ws) {
  // ei0: straight-line reset.
  ws.out.entropy_total = 0.0;
  // ei1: drive the component models (the paper's wrapper order).
  lw_spectral_integration(p, ws);
  longwave_entropy_model(p, ws);
  sw_spectral_integration(p, ws);
  shortwave_entropy_model(p, ws);
  // ei2: column entropy total (SimpleSingle reduction).
  for (int k = 0; k < NL; ++k) {
    ws.out.entropy_total =
        ws.out.entropy_total + (ws.out.lw_entropy[k] + ws.out.sw_entropy[k]);
  }
  // ei3: normalize (straight-line).
  ws.out.entropy_total = ws.out.entropy_total / 60.0;
  // ei4: final adjustment pass.
  adjust2(p, ws);
}

SarbOutputs run_reference(const AtmosphereProfile& p) {
  Workspace ws;
  entropy_interface(p, ws);
  return ws.out;
}

}  // namespace glaf::fuliou
