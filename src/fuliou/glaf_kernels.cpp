#include "fuliou/glaf_kernels.hpp"

#include <stdexcept>

#include "fuliou/profile.hpp"

namespace glaf::fuliou {
namespace {

/// Grid handles shared by the subroutine builders.
struct Grids {
  GridHandle n_levels, n_lwbands, n_swbands, n_hemis;
  // existing-module inputs (§3.1)
  GridHandle pressure, temperature, humidity, o3, cloud_frac, tau;
  GridHandle tsfc;          // TYPE element fo%tsfc (§3.5)
  GridHandle albedo, cosz;  // COMMON /sw_in/ (§3.2)
  // module-scope intermediates (§3.3)
  GridHandle od, w0, t_layer, tsfc_arr, entropy2, od_total;
  GridHandle trans, absorb, emiss, swsrc;
  // module-scope outputs
  GridHandle planck, lw_flux, lw_entropy, sw_flux, sw_entropy;
  GridHandle adjusted_flux, baseline, entropy_total, wc_flux;
};

Grids declare_grids(ProgramBuilder& pb, int num_levels) {
  Grids g;
  g.n_levels = pb.global("n_levels", DataType::kInt, {},
                         {.init = {std::int64_t{num_levels}}});
  g.n_lwbands = pb.global("n_lwbands", DataType::kInt, {},
                          {.init = {std::int64_t{kNumLwBands}}});
  g.n_swbands = pb.global("n_swbands", DataType::kInt, {},
                          {.init = {std::int64_t{kNumSwBands}}});
  g.n_hemis = pb.global("n_hemis", DataType::kInt, {},
                        {.init = {std::int64_t{kNumHemis}}});

  const E nl = E(g.n_levels);
  const GridOpts input{.comment = "per-level input from the legacy code",
                       .from_module = "fuliou_input"};
  g.pressure = pb.global("pressure", DataType::kDouble, {nl}, input);
  g.temperature = pb.global("temperature", DataType::kDouble, {nl}, input);
  g.humidity = pb.global("humidity", DataType::kDouble, {nl}, input);
  g.o3 = pb.global("o3", DataType::kDouble, {nl}, input);
  g.cloud_frac = pb.global("cloud_frac", DataType::kDouble, {nl}, input);
  g.tau = pb.global("tau", DataType::kDouble, {nl}, input);

  g.tsfc = pb.global("tsfc", DataType::kDouble, {},
                     {.comment = "surface temperature, element of TYPE fo",
                      .from_module = "fuliou_input",
                      .type_parent = "fo"});

  g.albedo = pb.global("albedo", DataType::kDouble, {},
                       {.common_block = "sw_in"});
  g.cosz = pb.global("cosz", DataType::kDouble, {},
                     {.common_block = "sw_in"});

  const GridOpts mscope{.module_scope = true};
  g.od = pb.global("od", DataType::kDouble, {nl}, mscope);
  g.w0 = pb.global("w0", DataType::kDouble, {nl}, mscope);
  g.t_layer = pb.global("t_layer", DataType::kDouble, {nl}, mscope);
  g.tsfc_arr = pb.global("tsfc_arr", DataType::kDouble, {nl}, mscope);
  g.entropy2 = pb.global("entropy2", DataType::kDouble, {nl}, mscope);
  g.od_total = pb.global("od_total", DataType::kDouble, {}, mscope);
  g.trans = pb.global("trans", DataType::kDouble, {E(g.n_lwbands), nl}, mscope);
  g.absorb = pb.global("absorb", DataType::kDouble, {E(g.n_lwbands), nl},
                       mscope);
  g.emiss = pb.global("emiss", DataType::kDouble, {E(g.n_lwbands), nl},
                      mscope);
  g.swsrc = pb.global("swsrc", DataType::kDouble, {E(g.n_swbands), nl},
                      mscope);

  g.planck = pb.global("planck", DataType::kDouble, {E(g.n_lwbands), nl},
                       mscope);
  g.lw_flux = pb.global("lw_flux", DataType::kDouble, {E(g.n_hemis), nl},
                        mscope);
  g.lw_entropy = pb.global("lw_entropy", DataType::kDouble, {nl}, mscope);
  g.sw_flux = pb.global("sw_flux", DataType::kDouble, {nl}, mscope);
  g.sw_entropy = pb.global("sw_entropy", DataType::kDouble, {nl}, mscope);
  g.adjusted_flux = pb.global("adjusted_flux", DataType::kDouble, {nl},
                              mscope);
  g.baseline = pb.global("baseline", DataType::kDouble, {nl}, mscope);
  g.entropy_total = pb.global("entropy_total", DataType::kDouble, {}, mscope);
  g.wc_flux = pb.global("wc_flux", DataType::kDouble, {nl}, mscope);
  return g;
}

void build_lw_spectral_integration(ProgramBuilder& pb, const Grids& g) {
  auto fb = pb.function("lw_spectral_integration");
  fb.comment("Longwave spectral integration over 12 bands");
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");
  const E b = idx("b");

  auto ls1 = fb.step("ls1");
  ls1.comment("zero flux arrays");
  ls1.foreach_("k", 0, nl1);
  ls1.assign(g.lw_flux(liti(0), k), 0.0);
  ls1.assign(g.lw_flux(liti(1), k), 0.0);

  auto ls2 = fb.step("ls2");
  ls2.comment("Planck-like source per band and level");
  ls2.foreach_("b", 0, E(g.n_lwbands) - 1).foreach_("k", 0, nl1);
  ls2.assign(g.planck(b, k),
             0.5 * call("EXP", {-(call("ABS", {g.temperature(k) - 250.0}) /
                                  (30.0 + b))}) +
                 0.01 * (b + 1));

  auto ls3 = fb.step("ls3");
  ls3.comment("seed downward flux from the first three bands");
  ls3.foreach_("k", 0, nl1);
  ls3.assign(g.lw_flux(liti(1), k),
             g.planck(liti(0), k) * 0.5 + g.planck(liti(1), k) * 0.25 +
                 g.planck(liti(2), k) * 0.125);

  auto ls4 = fb.step("ls4");
  ls4.comment("broadcast surface temperature");
  ls4.foreach_("k", 0, nl1);
  ls4.assign(g.tsfc_arr(k), E(g.tsfc));
}

void build_longwave_entropy_model(ProgramBuilder& pb, const Grids& g) {
  auto fb = pb.function("longwave_entropy_model");
  fb.comment("Longwave entropy model (the 422-SLOC subroutine of Table 1)");
  auto src = fb.local("src", DataType::kDouble);
  auto wgt = fb.local("wgt", DataType::kDouble);
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");
  const E b = idx("b");
  const E h = idx("h");

  auto le0 = fb.step("le0");
  le0.comment("reset column accumulator");
  le0.assign(g.od_total(), 0.0);

  auto le1 = fb.step("le1");
  le1.comment("zero entropy and optical-depth arrays");
  le1.foreach_("k", 0, nl1);
  le1.assign(g.lw_entropy(k), 0.0);
  le1.assign(g.od(k), 0.0);
  le1.assign(g.entropy2(k), 0.0);

  auto le2 = fb.step("le2");
  le2.comment("broadcast surface temperature into layer array");
  le2.foreach_("k", 0, nl1);
  le2.assign(g.t_layer(k), E(g.tsfc));

  auto le3 = fb.step("le3");
  le3.comment("gaseous + aerosol optical depth");
  le3.foreach_("k", 0, nl1);
  le3.assign(g.od(k), g.tau(k) * (1.0 + 0.1 * g.humidity(k)) +
                          0.001 * g.o3(k) +
                          0.0001 * g.pressure(k) / 1000.0);

  auto le4 = fb.step("le4");
  le4.comment("single-scattering albedo");
  le4.foreach_("k", 0, nl1);
  le4.assign(g.w0(k), 0.5 + 0.4 * g.cloud_frac(k));

  auto le5 = fb.step("le5");
  le5.comment("column optical depth (sum reduction)");
  le5.foreach_("k", 0, nl1);
  le5.assign(g.od_total(), E(g.od_total) + g.od(k));

  auto le6 = fb.step("le6");
  le6.comment("band transmissivities");
  le6.foreach_("b", 0, E(g.n_lwbands) - 1).foreach_("k", 0, nl1);
  le6.assign(g.trans(b, k), call("EXP", {-(g.od(k) * (1.0 + 0.05 * b))}));

  auto le6b = fb.step("le6b");
  le6b.comment("band absorptivities");
  le6b.foreach_("b", 0, E(g.n_lwbands) - 1).foreach_("k", 0, nl1);
  le6b.assign(g.absorb(b, k), 1.0 - g.trans(b, k));

  auto le6c = fb.step("le6c");
  le6c.comment("banded emission");
  le6c.foreach_("b", 0, E(g.n_lwbands) - 1).foreach_("k", 0, nl1);
  le6c.assign(g.emiss(b, k), g.planck(b, k) * g.absorb(b, k));

  // le7: first large complex loop (2 x 60 iterations, COLLAPSE(2)).
  auto le7 = fb.step("le7");
  le7.comment("cloud-overlap flux accumulation (complex loop 1)");
  le7.foreach_("h", 0, E(g.n_hemis) - 1).foreach_("k", 0, nl1);
  le7.assign(src(), g.planck(h * 3, k));
  le7.if_(
      g.cloud_frac(k) > 0.5,
      [&](BodyBuilder& bb) {
        bb.assign(src(), E(src) * (1.0 - g.w0(k)) + 0.1 * g.trans(h * 3, k));
        bb.assign(g.lw_flux(h, k),
                  g.lw_flux(h, k) + E(src) * (1.0 + 0.2 * h));
      },
      [&](BodyBuilder& bb) {
        bb.assign(src(), E(src) + g.w0(k) * 0.05);
        bb.assign(g.lw_flux(h, k), g.lw_flux(h, k) + E(src) * g.trans(h, k));
      });
  le7.assign(g.lw_entropy(k),
             g.lw_entropy(k) + E(src) / call("MAX", {g.t_layer(k), lit(1.0)}));

  // le8: second large complex loop (2 x 60, nested branch ladder).
  auto le8 = fb.step("le8");
  le8.comment("entropy weighting (complex loop 2)");
  le8.foreach_("h", 0, E(g.n_hemis) - 1).foreach_("k", 0, nl1);
  le8.assign(wgt(), g.trans(h * 2, k) * g.w0(k));
  le8.if_(
      g.od(k) > E(g.od_total) / 60.0,
      [&](BodyBuilder& bb) {
        bb.assign(g.lw_flux(h, k),
                  g.lw_flux(h, k) + call("ALOG", {1.0 + E(wgt)}));
      },
      [&](BodyBuilder& bb) {
        bb.if_(
            E(wgt) > 0.2,
            [&](BodyBuilder& bbb) {
              bbb.assign(g.lw_flux(h, k), g.lw_flux(h, k) + E(wgt) * 0.5);
            },
            [&](BodyBuilder& bbb) {
              bbb.assign(g.lw_flux(h, k), g.lw_flux(h, k) + E(wgt) * E(wgt));
            });
      });
  le8.assign(g.entropy2(k), g.entropy2(k) + E(wgt) / (1.0 + h));

  auto le9 = fb.step("le9");
  le9.comment("fold secondary entropy term");
  le9.foreach_("k", 0, nl1);
  le9.assign(g.lw_entropy(k), g.lw_entropy(k) + g.entropy2(k) * 0.5);

  auto le9b = fb.step("le9b");
  le9b.comment("add first three emission bands to the upward flux");
  le9b.foreach_("k", 0, nl1);
  le9b.assign(g.lw_flux(liti(0), k),
              g.lw_flux(liti(0), k) + g.emiss(liti(0), k) +
                  g.emiss(liti(1), k) + g.emiss(liti(2), k));
}

void build_sw_spectral_integration(ProgramBuilder& pb, const Grids& g) {
  auto fb = pb.function("sw_spectral_integration");
  fb.comment("Shortwave spectral integration over 6 bands");
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");
  const E sb = idx("sb");

  auto ss1 = fb.step("ss1");
  ss1.comment("zero shortwave flux");
  ss1.foreach_("k", 0, nl1);
  ss1.assign(g.sw_flux(k), 0.0);

  auto ss2 = fb.step("ss2");
  ss2.comment("per-band downward shortwave source");
  ss2.foreach_("sb", 0, E(g.n_swbands) - 1).foreach_("k", 0, nl1);
  ss2.assign(g.swsrc(sb, k),
             E(g.cosz) * call("EXP", {-(g.tau(k) * (0.3 + 0.1 * sb))}) *
                 (1.0 - E(g.albedo)));

  auto ss3 = fb.step("ss3");
  ss3.comment("spectral sum");
  ss3.foreach_("k", 0, nl1);
  ss3.assign(g.sw_flux(k),
             g.swsrc(liti(0), k) + g.swsrc(liti(1), k) + g.swsrc(liti(2), k) +
                 g.swsrc(liti(3), k) + g.swsrc(liti(4), k) +
                 g.swsrc(liti(5), k));
}

void build_shortwave_entropy_model(ProgramBuilder& pb, const Grids& g) {
  auto fb = pb.function("shortwave_entropy_model");
  fb.comment("Shortwave entropy model (13 SLOC in Table 1)");
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");

  auto se1 = fb.step("se1");
  se1.comment("entropy flux = energy flux over temperature");
  se1.foreach_("k", 0, nl1);
  se1.assign(g.sw_entropy(k),
             g.sw_flux(k) / call("MAX", {g.temperature(k), lit(1.0)}));
}

void build_adjust2(ProgramBuilder& pb, const Grids& g) {
  auto fb = pb.function("adjust2");
  fb.comment("Final flux adjustment");
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");

  auto a1 = fb.step("a1");
  a1.comment("net adjusted flux");
  a1.foreach_("k", 0, nl1);
  a1.assign(g.adjusted_flux(k),
            g.lw_flux(liti(0), k) - g.lw_flux(liti(1), k) + g.sw_flux(k));

  auto a2 = fb.step("a2");
  a2.comment("clamp at zero");
  a2.foreach_("k", 0, nl1);
  a2.assign(g.adjusted_flux(k), call("MAX", {g.adjusted_flux(k), lit(0.0)}));

  auto a3 = fb.step("a3");
  a3.comment("broadcast the top-of-atmosphere value");
  a3.foreach_("k", 0, nl1);
  a3.assign(g.baseline(k), g.adjusted_flux(liti(0)));
}

void build_entropy_interface(ProgramBuilder& pb, const Grids& g) {
  auto fb = pb.function("entropy_interface");
  fb.comment("Driver: calls the component models in order (the wrapper)");
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");

  auto ei0 = fb.step("ei0");
  ei0.comment("reset entropy accumulator");
  ei0.assign(g.entropy_total(), 0.0);

  auto ei1 = fb.step("ei1");
  ei1.comment("component model calls");
  ei1.call_sub("lw_spectral_integration", {});
  ei1.call_sub("longwave_entropy_model", {});
  ei1.call_sub("sw_spectral_integration", {});
  ei1.call_sub("shortwave_entropy_model", {});

  auto ei2 = fb.step("ei2");
  ei2.comment("column entropy total");
  ei2.foreach_("k", 0, nl1);
  ei2.assign(g.entropy_total(),
             E(g.entropy_total) + (g.lw_entropy(k) + g.sw_entropy(k)));

  auto ei3 = fb.step("ei3");
  ei3.comment("normalize");
  ei3.assign(g.entropy_total(), E(g.entropy_total) / 60.0);

  auto ei4 = fb.step("ei4");
  ei4.comment("final adjustment pass");
  ei4.call_sub("adjust2", {});
}

void build_window_channel_model(ProgramBuilder& pb, const Grids& g) {
  // EXTENSION beyond Table 1: the window-channel flux profile (paper 2.2
  // names longwave, shortwave AND window channel as SARB's outputs).
  auto fb = pb.function("window_channel_model");
  fb.comment("Window-channel (8-12um) flux profile [extension]");
  const E nl1 = E(g.n_levels) - 1;
  const E k = idx("k");
  const E b = idx("b");

  auto wc1 = fb.step("wc1");
  wc1.comment("zero the window flux");
  wc1.foreach_("k", 0, nl1);
  wc1.assign(g.wc_flux(k), 0.0);

  auto wc2 = fb.step("wc2");
  wc2.comment("accumulate the atmospheric-window bands");
  wc2.foreach_("b", 7, 9).foreach_("k", 0, nl1);
  wc2.assign(g.wc_flux(k),
             g.wc_flux(k) + g.planck(b, k) * g.trans(b, k) * 0.8);

  auto wc3 = fb.step("wc3");
  wc3.comment("cloud masking of the window");
  wc3.foreach_("k", 0, nl1);
  wc3.assign(g.wc_flux(k), g.wc_flux(k) * (1.0 - 0.3 * g.cloud_frac(k)));
}

}  // namespace

Program build_sarb_program(int num_levels) {
  ProgramBuilder pb("sarb_kernels");
  const Grids g = declare_grids(pb, num_levels);
  build_lw_spectral_integration(pb, g);
  build_longwave_entropy_model(pb, g);
  build_sw_spectral_integration(pb, g);
  build_shortwave_entropy_model(pb, g);
  build_adjust2(pb, g);
  build_entropy_interface(pb, g);
  build_window_channel_model(pb, g);
  auto result = pb.build();
  if (!result.is_ok()) {
    throw std::runtime_error("SARB program failed validation: " +
                             result.status().message());
  }
  return std::move(result).value();
}

const std::vector<std::string>& table1_subroutines() {
  static const std::vector<std::string> names = {
      "lw_spectral_integration", "longwave_entropy_model",
      "sw_spectral_integration", "shortwave_entropy_model",
      "entropy_interface",       "adjust2",
  };
  return names;
}

int paper_sloc(const std::string& subroutine) {
  if (subroutine == "lw_spectral_integration") return 75;
  if (subroutine == "longwave_entropy_model") return 422;
  if (subroutine == "sw_spectral_integration") return 50;
  if (subroutine == "shortwave_entropy_model") return 13;
  if (subroutine == "entropy_interface") return 46;
  if (subroutine == "adjust2") return 38;
  return -1;
}

}  // namespace glaf::fuliou
