#pragma once
// Async tiered compilation for serve sessions: requests are answered
// from the plan VM the moment a program loads, while this queue's
// background worker climbs the session's tier ladder — emit + compile
// the interp-math native kernel, publish it in the jit kernel cache,
// promote the session; then the same for the opt kernel when the
// session's ceiling asks for it.
//
// The queue compiles through NativeEngine::compile_object — the
// compile-only half of the engine split — so it never dlopens on the
// worker thread; promotion just flips the session's tier, and the next
// instance the pool constructs loads the published object as a pure
// cache hit. Compiling with options derived from
// Session::machine_options guarantees the cache key the worker
// publishes under is byte-identical to the one instance construction
// looks up.
//
// One worker thread: kernel compilation forks the system compiler, so
// queue depth, not parallelism, is what matters; a second compile would
// fight the first for cores the serving path needs.

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/session.hpp"

namespace glaf::serve {

class CompileQueue {
 public:
  CompileQueue();
  ~CompileQueue();  ///< drains nothing: pending jobs are dropped, the
                    ///< in-flight compile finishes, the worker joins

  CompileQueue(const CompileQueue&) = delete;
  CompileQueue& operator=(const CompileQueue&) = delete;

  /// Schedule `session`'s ladder: every tier above its current one up
  /// to its configured ceiling, in order. Idempotent enough for the
  /// caller's needs — re-enqueueing a fully-promoted session is a
  /// no-op in the worker.
  void enqueue(std::shared_ptr<Session> session);

  /// Block until the queue is empty and the worker is idle (tests and
  /// the daemon's --sync-compile mode).
  void wait_idle();

  /// Jobs completed so far (promotions + failures).
  [[nodiscard]] std::uint64_t completed() const;

  /// Jobs pending plus the in-flight one (the kHealth queue-depth
  /// field).
  [[nodiscard]] std::uint64_t depth() const;

 private:
  void worker_main();
  /// Compile every missing tier of one session, promoting as they land.
  void run_ladder(const std::shared_ptr<Session>& session);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::shared_ptr<Session>> queue_;
  bool busy_ = false;
  bool stop_ = false;
  std::uint64_t completed_ = 0;
  std::thread worker_;
};

}  // namespace glaf::serve
