#include "serve/compile_queue.hpp"

#include "analysis/parallelize.hpp"
#include "interp/native_options.hpp"
#include "jit/engine.hpp"
#include "support/fault.hpp"

namespace glaf::serve {

CompileQueue::CompileQueue() : worker_([this] { worker_main(); }) {}

CompileQueue::~CompileQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  worker_.join();
}

void CompileQueue::enqueue(std::shared_ptr<Session> session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    queue_.push_back(std::move(session));
  }
  cv_.notify_one();
}

void CompileQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

std::uint64_t CompileQueue::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::uint64_t CompileQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (busy_ ? 1 : 0);
}

void CompileQueue::worker_main() {
  while (true) {
    std::shared_ptr<Session> session;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      session = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    run_ladder(session);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      ++completed_;
    }
    idle_cv_.notify_all();
  }
}

void CompileQueue::run_ladder(const std::shared_ptr<Session>& session) {
  // The analysis a Machine at these options would run; computed once
  // for both rungs of the ladder.
  const ProgramAnalysis analysis = analyze_program(session->program());
  const Tier ceiling = session->config().target_tier;
  for (const Tier tier : {Tier::kNativeInterp, Tier::kNativeOpt}) {
    if (tier > ceiling || tier <= session->tier()) continue;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;  // in-flight session: stop between rungs
    }
    if (fault::should_fail("serve.compile")) {
      session->record_compile_error("fault injected: background compile");
      return;
    }
    const jit::NativeEngine::Options nopts =
        native_engine_options(session->machine_options(tier), nullptr);
    const StatusOr<jit::CompiledKernel> compiled =
        jit::NativeEngine::compile_object(session->program(), analysis,
                                          nopts);
    if (!compiled.is_ok()) {
      session->record_compile_error(
          std::string(compiled.status().message()));
      return;  // higher rungs would fail the same way
    }
    session->promote(tier, compiled.value().object_path);
  }
}

}  // namespace glaf::serve
