#include "serve/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace glaf::serve {

namespace {

/// connect(2) bounded by timeout_ms: non-blocking connect, poll for
/// writability, then SO_ERROR for the real verdict. timeout_ms <= 0
/// falls back to a plain blocking connect.
Status connect_with_timeout(int fd, const sockaddr_un& addr,
                            const std::string& path, int timeout_ms) {
  if (timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      return internal_error("connect " + path + ": " + std::strerror(errno));
    }
    return Status::ok();
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  Status st = Status::ok();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      st = internal_error("connect " + path + ": " + std::strerror(errno));
    } else {
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 0) {
        st = internal_error("connect " + path + ": timed out after " +
                            std::to_string(timeout_ms) + " ms");
      } else if (rc < 0) {
        st = internal_error("connect " + path + ": poll: " +
                            std::strerror(errno));
      } else {
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
          st = internal_error("connect " + path + ": " +
                              std::strerror(soerr));
        }
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return st;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : options_(other.options_), socket_path_(std::move(other.socket_path_)),
      jitter_(other.jitter_), fd_(other.fd_),
      server_pid_(other.server_pid_) {
  other.fd_ = -1;
  other.server_pid_ = 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::connect(const std::string& socket_path) {
  return connect(socket_path, Options{});
}

Status Client::connect(const std::string& socket_path,
                       const Options& options) {
  if (fd_ >= 0) return failed_precondition("already connected");
  socket_path_ = socket_path;
  options_ = options;
  jitter_ = SplitMix64(options.retry_seed);
  Status st;
  for (int attempt = 0;; ++attempt) {
    st = dial();
    if (st.is_ok() || attempt >= options_.retries) return st;
    backoff(attempt);
  }
}

Status Client::dial() {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return invalid_argument("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(),
              socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("socket: ") + std::strerror(errno));
  }
  const Status st = connect_with_timeout(fd, addr, socket_path_,
                                         options_.connect_timeout_ms);
  if (!st.is_ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;

  const StatusOr<Frame> reply =
      round_trip(Frame{MsgType::kHello, {}}, MsgType::kHelloOk);
  if (!reply.is_ok()) {
    close();
    return reply.status();
  }
  const StatusOr<HelloReplyMsg> hello = decode_hello_reply(reply.value());
  if (!hello.is_ok()) {
    close();
    return hello.status();
  }
  server_pid_ = hello.value().server_pid;
  return Status::ok();
}

StatusOr<Frame> Client::round_trip(const Frame& request,
                                   MsgType expected_reply) {
  transport_failed_ = false;
  if (fd_ < 0) {
    transport_failed_ = true;
    return failed_precondition("not connected");
  }
  const Status wr = write_frame(fd_, request);
  if (!wr.is_ok()) {
    // The stream may hold a partial frame: unusable for any later
    // request. Close now so the retry path re-dials.
    transport_failed_ = true;
    close();
    return wr;
  }
  StatusOr<Frame> reply =
      read_frame(fd_, options_.read_timeout_ms > 0 ? options_.read_timeout_ms
                                                   : -1);
  if (!reply.is_ok()) {
    transport_failed_ = true;
    close();
    return reply.status();
  }
  if (reply.value().type == MsgType::kError) {
    const StatusOr<ErrorMsg> err = decode_error(reply.value());
    if (!err.is_ok()) return err.status();
    // Clamp out-of-range wire codes rather than casting garbage.
    const auto code =
        err.value().code <= static_cast<std::uint32_t>(kMaxStatusCode)
            ? static_cast<StatusCode>(err.value().code)
            : StatusCode::kInternal;
    return Status(code, err.value().message);
  }
  if (reply.value().type != expected_reply) {
    return internal_error(
        "unexpected reply type " +
        std::to_string(static_cast<unsigned>(reply.value().type)));
  }
  return reply;
}

StatusOr<Frame> Client::exchange(const Frame& request,
                                 MsgType expected_reply) {
  for (int attempt = 0;; ++attempt) {
    Status last;
    if (fd_ < 0) {
      // A prior transport fault (or a never-connected client with a
      // remembered path) re-dials here.
      if (socket_path_.empty()) {
        return failed_precondition("not connected");
      }
      last = dial();
    }
    if (fd_ >= 0) {
      StatusOr<Frame> reply = round_trip(request, expected_reply);
      if (reply.is_ok()) return reply;
      last = reply.status();
      const bool retryable =
          transport_failed_ || last.code() == StatusCode::kBusy;
      if (!retryable) return last;
    }
    if (attempt >= options_.retries) return last;
    backoff(attempt);
  }
}

void Client::backoff(int attempt) {
  const int base = std::max(1, options_.retry_backoff_ms)
                   << std::min(attempt, 5);
  const double ms =
      static_cast<double>(base) * (1.0 + 0.5 * jitter_.next_double());
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0)));
}

StatusOr<LoadReplyMsg> Client::load_builtin(const std::string& name,
                                            const ExecConfig& config) {
  LoadProgramMsg msg;
  msg.builtin = name;
  msg.config = config;
  const StatusOr<Frame> reply = exchange(encode(msg), MsgType::kLoadReply);
  if (!reply.is_ok()) return reply.status();
  return decode_load_reply(reply.value());
}

StatusOr<LoadReplyMsg> Client::load_source(const std::string& source,
                                           const ExecConfig& config) {
  LoadProgramMsg msg;
  msg.source = source;
  msg.config = config;
  const StatusOr<Frame> reply = exchange(encode(msg), MsgType::kLoadReply);
  if (!reply.is_ok()) return reply.status();
  return decode_load_reply(reply.value());
}

StatusOr<RunReplyMsg> Client::run(std::uint64_t session_id,
                                  const std::string& entry,
                                  const std::vector<double>& args,
                                  std::uint32_t deadline_ms) {
  RunEntryMsg msg;
  msg.session_id = session_id;
  msg.entry = entry;
  msg.args = args;
  msg.deadline_ms = deadline_ms;
  const StatusOr<Frame> reply = exchange(encode(msg), MsgType::kRunReply);
  if (!reply.is_ok()) return reply.status();
  return decode_run_reply(reply.value());
}

StatusOr<BatchReplyMsg> Client::run_batch(std::uint64_t session_id,
                                          const std::string& entry,
                                          std::uint32_t count,
                                          std::uint32_t num_args,
                                          const std::vector<double>& scalars,
                                          std::uint32_t deadline_ms) {
  RunBatchMsg msg;
  msg.session_id = session_id;
  msg.entry = entry;
  msg.count = count;
  msg.num_args = num_args;
  msg.scalars = scalars;
  msg.deadline_ms = deadline_ms;
  const StatusOr<Frame> reply =
      exchange(encode(msg), MsgType::kBatchReply);
  if (!reply.is_ok()) return reply.status();
  return decode_batch_reply(reply.value());
}

StatusOr<std::string> Client::stats(std::uint64_t session_id) {
  StatsMsg msg;
  msg.session_id = session_id;
  const StatusOr<Frame> reply =
      exchange(encode(msg), MsgType::kStatsReply);
  if (!reply.is_ok()) return reply.status();
  const StatusOr<StatsReplyMsg> stats = decode_stats_reply(reply.value());
  if (!stats.is_ok()) return stats.status();
  return stats.value().json;
}

StatusOr<HealthReplyMsg> Client::health() {
  const StatusOr<Frame> reply =
      exchange(Frame{MsgType::kHealth, {}}, MsgType::kHealthReply);
  if (!reply.is_ok()) return reply.status();
  return decode_health_reply(reply.value());
}

Status Client::shutdown_server() {
  // Deliberately round_trip, not exchange: shutdown is not pure. A
  // reconnect-and-resend after a lost ack could reach the NEXT daemon
  // on this path and kill it too.
  const StatusOr<Frame> reply =
      round_trip(Frame{MsgType::kShutdown, {}}, MsgType::kShutdownOk);
  if (!reply.is_ok()) return reply.status();
  close();  // daemon is exiting; this connection is done
  return Status::ok();
}

}  // namespace glaf::serve
