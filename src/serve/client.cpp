#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace glaf::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), server_pid_(other.server_pid_) {
  other.fd_ = -1;
  other.server_pid_ = 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::connect(const std::string& socket_path) {
  if (fd_ >= 0) return failed_precondition("already connected");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return invalid_argument("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status st = internal_error("connect " + socket_path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return st;
  }
  fd_ = fd;

  const StatusOr<Frame> reply =
      round_trip(Frame{MsgType::kHello, {}}, MsgType::kHelloOk);
  if (!reply.is_ok()) {
    close();
    return reply.status();
  }
  const StatusOr<HelloReplyMsg> hello = decode_hello_reply(reply.value());
  if (!hello.is_ok()) {
    close();
    return hello.status();
  }
  server_pid_ = hello.value().server_pid;
  return Status::ok();
}

StatusOr<Frame> Client::round_trip(const Frame& request,
                                   MsgType expected_reply) {
  if (fd_ < 0) return failed_precondition("not connected");
  const Status wr = write_frame(fd_, request);
  if (!wr.is_ok()) return wr;
  StatusOr<Frame> reply = read_frame(fd_);
  if (!reply.is_ok()) return reply.status();
  if (reply.value().type == MsgType::kError) {
    const StatusOr<ErrorMsg> err = decode_error(reply.value());
    if (!err.is_ok()) return err.status();
    // Clamp out-of-range wire codes rather than casting garbage.
    const auto code =
        err.value().code <= static_cast<std::uint32_t>(StatusCode::kInternal)
            ? static_cast<StatusCode>(err.value().code)
            : StatusCode::kInternal;
    return Status(code, err.value().message);
  }
  if (reply.value().type != expected_reply) {
    return internal_error(
        "unexpected reply type " +
        std::to_string(static_cast<unsigned>(reply.value().type)));
  }
  return reply;
}

StatusOr<LoadReplyMsg> Client::load_builtin(const std::string& name,
                                            const ExecConfig& config) {
  LoadProgramMsg msg;
  msg.builtin = name;
  msg.config = config;
  const StatusOr<Frame> reply = round_trip(encode(msg), MsgType::kLoadReply);
  if (!reply.is_ok()) return reply.status();
  return decode_load_reply(reply.value());
}

StatusOr<LoadReplyMsg> Client::load_source(const std::string& source,
                                           const ExecConfig& config) {
  LoadProgramMsg msg;
  msg.source = source;
  msg.config = config;
  const StatusOr<Frame> reply = round_trip(encode(msg), MsgType::kLoadReply);
  if (!reply.is_ok()) return reply.status();
  return decode_load_reply(reply.value());
}

StatusOr<RunReplyMsg> Client::run(std::uint64_t session_id,
                                  const std::string& entry,
                                  const std::vector<double>& args) {
  RunEntryMsg msg;
  msg.session_id = session_id;
  msg.entry = entry;
  msg.args = args;
  const StatusOr<Frame> reply = round_trip(encode(msg), MsgType::kRunReply);
  if (!reply.is_ok()) return reply.status();
  return decode_run_reply(reply.value());
}

StatusOr<BatchReplyMsg> Client::run_batch(std::uint64_t session_id,
                                          const std::string& entry,
                                          std::uint32_t count,
                                          std::uint32_t num_args,
                                          const std::vector<double>& scalars) {
  RunBatchMsg msg;
  msg.session_id = session_id;
  msg.entry = entry;
  msg.count = count;
  msg.num_args = num_args;
  msg.scalars = scalars;
  const StatusOr<Frame> reply =
      round_trip(encode(msg), MsgType::kBatchReply);
  if (!reply.is_ok()) return reply.status();
  return decode_batch_reply(reply.value());
}

StatusOr<std::string> Client::stats(std::uint64_t session_id) {
  StatsMsg msg;
  msg.session_id = session_id;
  const StatusOr<Frame> reply =
      round_trip(encode(msg), MsgType::kStatsReply);
  if (!reply.is_ok()) return reply.status();
  const StatusOr<StatsReplyMsg> stats = decode_stats_reply(reply.value());
  if (!stats.is_ok()) return stats.status();
  return stats.value().json;
}

Status Client::shutdown_server() {
  const StatusOr<Frame> reply =
      round_trip(Frame{MsgType::kShutdown, {}}, MsgType::kShutdownOk);
  if (!reply.is_ok()) return reply.status();
  close();  // daemon is exiting; this connection is done
  return Status::ok();
}

}  // namespace glaf::serve
