#pragma once
// The glaf-serve daemon core: a Unix-domain stream socket accept loop,
// one reader thread per connection, and the frame dispatcher that wires
// the wire protocol to the session registry, the async compile queue,
// and the request batcher.
//
// Lifecycle: start() binds + listens and spawns the accept thread;
// stop() (or a client kShutdown frame) closes the listener, wakes every
// connection with shutdown(2), and joins all threads. The server object
// is reusable for tests but a daemon normally start()s once.
//
// Failure containment: a malformed frame (bad magic, bad version, junk
// length, truncated payload) poisons only ITS connection — the reader
// sends a typed kError frame when the stream is still writable, closes,
// and every other client is untouched. Unknown message types get a
// typed kError reply and the connection stays open (forward
// compatibility). The daemon itself must never crash on input bytes.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/compile_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "support/status.hpp"

namespace glaf::serve {

class Server {
 public:
  struct Options {
    std::string socket_path;        ///< Unix socket path (required)
    int threads = 4;                ///< batcher sweep-pool width
    std::size_t max_batch = 4096;   ///< batcher drain cap
    /// Defaults applied to sessions whose ExecConfig asks for nothing
    /// beyond the wire fields.
    std::string cc;                 ///< "" = environment default
    std::string cache_dir;          ///< "" = environment default
    std::size_t max_pool = 16;      ///< idle instances kept per session
    /// Compile the tier ladder synchronously inside kLoadProgram
    /// instead of in the background (deterministic tests/benches).
    bool sync_compile = false;
    /// Max milliseconds a reply write may stall with zero progress
    /// before the connection is declared dead. Reply delivery runs
    /// serially on the batcher dispatcher, so without this bound one
    /// client that stops reading would freeze every connection.
    int write_timeout_ms = 10000;
    /// Admission control: run requests beyond this many in flight
    /// (admitted, reply not yet delivered) are shed with a typed kBusy
    /// instead of queueing without bound — overload answers fast rather
    /// than collapsing every client's latency. 0 disables the bound.
    std::size_t max_inflight = 4096;
    /// Per-connection share of the admission budget: one client with
    /// unanswered runs beyond this is shed even when the server as a
    /// whole has room. 0 disables.
    std::size_t max_conn_pending = 1024;
    /// Circuit-breaker knobs copied into every session's config (see
    /// SessionConfig).
    int breaker_threshold = 3;
    int breaker_backoff_ms = 1000;
    /// Max milliseconds drain() waits for in-flight replies before
    /// stopping anyway.
    int drain_timeout_ms = 10000;
  };

  explicit Server(Options options);
  ~Server();  ///< implies stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the accept thread. Fails if the socket path is
  /// unusable (a stale socket file from a dead daemon is replaced).
  Status start();

  /// Close the listener and every connection, join all threads.
  /// Idempotent.
  void stop();

  /// Graceful shutdown (the SIGTERM path): stop accepting connections,
  /// shed new run requests with a typed kBusy, let already-admitted
  /// work finish and its replies deliver (bounded by
  /// Options::drain_timeout_ms), then stop(). kHealth and kStats keep
  /// answering during the drain window so orchestration can tell
  /// "draining" from "dead".
  void drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Readiness snapshot (also served on the wire as kHealth).
  [[nodiscard]] HealthReplyMsg health() const;

  /// Block until stop() happens (daemon main thread parks here; a
  /// client kShutdown unblocks it).
  void wait();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Whole-server stats JSON (also served on the wire via kStats with
  /// session_id 0): per-session stats under the shared schema plus
  /// batcher counters and connection totals.
  [[nodiscard]] std::string stats_json() const;

  /// Direct access for in-process harnesses (bench, tests).
  [[nodiscard]] SessionRegistry& registry() { return registry_; }
  [[nodiscard]] CompileQueue& compile_queue() { return compile_queue_; }
  [[nodiscard]] Batcher& batcher() { return batcher_; }

 private:
  /// One live client connection. write_mutex serializes reply writes
  /// between the reader (load / stats / error replies) and the batcher
  /// dispatcher (run replies), and also guards fd lifetime: the reader
  /// closes fd (and sets it to -1) under write_mutex, and every other
  /// thread touches fd only under write_mutex after re-checking it —
  /// so no write can land on a closed (and possibly reused) descriptor.
  /// The reader handle is touched by exactly one owner: stop() when
  /// stopping_ is set, the reader thread itself (self-detach) otherwise.
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
    std::thread reader;
    /// Admitted runs whose reply has not been delivered yet (this
    /// connection's slice of the admission budget).
    std::atomic<std::size_t> pending{0};
  };

  void accept_main();
  void connection_main(const std::shared_ptr<Connection>& conn);
  /// Dispatch one request frame; returns false when the connection
  /// should close (shutdown request or write failure).
  bool handle_frame(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  void handle_load(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void handle_run(const std::shared_ptr<Connection>& conn,
                  const Frame& frame);
  void handle_batch(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  void handle_stats(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  /// Write under the connection's write mutex; drops silently (and
  /// marks the connection closed) when the peer is gone.
  void send(const std::shared_ptr<Connection>& conn, const Frame& frame);
  /// Admission control for `count` run requests on `conn`: reserves the
  /// in-flight slots, or explains the shed in `why` (server draining,
  /// global budget, per-connection budget). On success the caller must
  /// balance each slot with finish_run().
  bool admit_runs(const std::shared_ptr<Connection>& conn,
                  std::size_t count, Status* why);
  /// Release one admitted slot (reply delivered or dropped).
  void finish_run(const std::shared_ptr<Connection>& conn);

  const Options options_;
  SessionRegistry registry_;
  CompileQueue compile_queue_;
  Batcher batcher_;

  /// Atomic: stop() swaps it to -1 and closes it while accept_main
  /// reads it between poll rounds.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  /// Admitted runs not yet answered, and runs shed by admission
  /// control (monotonic).
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::thread accept_thread_;

  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  /// Set (under conn_mutex_) for the span of stop()'s connection
  /// teardown: it makes exiting readers leave their thread handle alone
  /// so stop() is the sole owner that joins them. Without it, a reader
  /// detaching itself while stop() joins the same std::thread object is
  /// a data race, and a detach landing between stop's joinable() check
  /// and its join() turns shutdown into std::terminate.
  bool stopping_ = false;
  std::uint64_t connections_total_ = 0;
  std::uint64_t protocol_errors_ = 0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  /// True when no teardown is pending: initially (never started) and
  /// again once stop() finishes. start() clears it.
  bool stopped_ = true;
};

/// Resolve a wire ExecConfig + server options into a SessionConfig.
/// Fails on out-of-range tier/policy values.
StatusOr<SessionConfig> resolve_config(const ExecConfig& wire,
                                       const Server::Options& server);

/// Resolve a LoadProgramMsg's program: builtin name ("sarb", "fun3d")
/// or serialized GLAF IR source, validated either way.
StatusOr<Program> resolve_program(const LoadProgramMsg& msg);

}  // namespace glaf::serve
