#pragma once
// Warmed program sessions for the glaf-serve daemon. A Session owns a
// pool of ready-to-run Machine instances for one (program, config) key
// — constructed once (plans compiled, native kernel loaded when the
// session has been promoted) and leased out per request, so steady-state
// requests pay zero compilation, zero analysis, and zero allocation of
// program state.
//
// Tier promotion: a session starts on the plan VM (tier 0 — Machine
// construction is milliseconds) and the async compile queue climbs the
// ladder in the background: the bit-identical interp-math native kernel
// (tier 1), then the ulp-bounded opt kernel (tier 2) when requested.
// promote() only flips an atomic — instances at the new tier are built
// lazily on the next acquire, which by then is a pure kernel-cache hit.
// Outdated pooled instances are retired on release, so a promoted
// session converges to all-native without ever blocking a request.
//
// The session key is the jit cache hash lineage: a 128-bit FNV-1a digest
// over the serialized program text and the execution config, so two
// clients loading the same program with the same config share one warm
// pool, while any config difference (policy, tier ceiling, portability)
// gets its own.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "interp/machine.hpp"

namespace glaf::serve {

/// Execution tiers a session serves from, lowest to highest. Wire value
/// = enum value (RunReplyMsg::tier).
enum class Tier : std::uint8_t {
  kPlan = 0,         ///< flat-plan bytecode VM (no compiler involved)
  kNativeInterp = 1, ///< interp-math native kernel (bit-identical)
  kNativeOpt = 2,    ///< typed opt kernel (ulp-bounded)
};

[[nodiscard]] const char* to_string(Tier tier);

/// Per-session execution configuration (resolved from the wire
/// ExecConfig plus server-level defaults).
struct SessionConfig {
  Tier target_tier = Tier::kNativeInterp;  ///< compile ladder ceiling
  DirectivePolicy policy = DirectivePolicy::kV0;
  bool portable = false;      ///< opt tier without -march=native
  std::string cc;             ///< "" = $GLAF_CC / cc
  std::string cache_dir;      ///< "" = $GLAF_KERNEL_CACHE / XDG default
  /// Retain at most this many idle instances per tier (more are
  /// destroyed on release; acquire constructs on demand).
  std::size_t max_pool = 16;
  /// Circuit breaker: after this many consecutive native load/dispatch
  /// failures the session trips — demotes to the plan tier, quarantines
  /// the cache entry, and re-probes the promoted tier after the backoff
  /// (doubled per consecutive trip, capped at 32x).
  int breaker_threshold = 3;
  int breaker_backoff_ms = 1000;
};

/// One session stat snapshot (all counters monotonic).
struct SessionStats {
  std::uint64_t runs_plan = 0;
  std::uint64_t runs_native_interp = 0;
  std::uint64_t runs_native_opt = 0;
  std::uint64_t instances_created = 0;
  std::uint64_t instances_retired = 0;
  std::size_t pooled_idle = 0;
  Tier tier = Tier::kPlan;
  /// (tier, seconds since session creation) per completed promotion.
  std::vector<std::pair<Tier, double>> promotions;
  /// Nonempty when a background compile failed (the session then stays
  /// at the highest tier that did build).
  std::string compile_error;
  /// Circuit-breaker bookkeeping: native instances that refused to
  /// construct at a promoted tier, trips of the breaker, whether it is
  /// currently open (serving demoted at tier 0), and the last recorded
  /// trip reason.
  std::uint64_t native_load_failures = 0;
  std::uint64_t breaker_trips = 0;
  bool breaker_open = false;
  std::string breaker_reason;
};

class Session;

/// RAII lease of one warmed Machine. Runs happen through call(); the
/// instance returns to the pool (or retires, if the session promoted
/// underneath it) on destruction.
class Lease {
 public:
  Lease(Lease&& other) noexcept;
  Lease& operator=(Lease&&) = delete;
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease();

  /// The tier this instance executes at.
  [[nodiscard]] Tier tier() const { return tier_; }
  [[nodiscard]] Machine& machine() { return *machine_; }

 private:
  friend class Session;
  Lease(Session* session, std::unique_ptr<Machine> machine, Tier tier)
      : session_(session), machine_(std::move(machine)), tier_(tier) {}

  Session* session_ = nullptr;
  std::unique_ptr<Machine> machine_;
  Tier tier_ = Tier::kPlan;
};

class Session {
 public:
  /// Computes the session key and warms nothing yet; the first acquire
  /// builds the first instance. `program` is the validated program.
  Session(Program program, SessionConfig config);

  /// Full hex session key (program text + config digest).
  [[nodiscard]] const std::string& hash() const { return hash_; }
  /// Wire id: the first 8 bytes of the key.
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  /// Current serving tier (atomic; promotions only ever raise it).
  [[nodiscard]] Tier tier() const {
    return static_cast<Tier>(tier_.load(std::memory_order_acquire));
  }

  /// Lease a warmed instance at the current tier, constructing one when
  /// the pool is empty. Construction failures (native engine refused at
  /// a promoted tier) degrade: the lease falls back to tier 0 rather
  /// than failing the request.
  [[nodiscard]] StatusOr<Lease> acquire();

  /// Raise the serving tier (no-op when `tier` is not above the current
  /// one). Called by the compile queue after the kernel object for
  /// `tier` is published in the cache; `object_path` is that published
  /// entry, remembered so a tripping circuit breaker can quarantine it.
  /// Fresh evidence of a working kernel also closes an open breaker.
  void promote(Tier tier, const std::string& object_path = "");

  /// Record a failed background compile (shows up in stats; the session
  /// keeps serving at its current tier).
  void record_compile_error(const std::string& message);

  /// Count one served run at `tier` (batcher bookkeeping).
  void record_run(Tier tier);

  [[nodiscard]] SessionStats stats() const;

  /// Stats as a JSON object: the counters above plus the promotion
  /// timeline and — when a native instance is pooled — its NativeReport
  /// under the same schema `glafc --json` prints.
  [[nodiscard]] std::string stats_json() const;

  /// InterpOptions a Machine of this session uses at `tier`. Exposed so
  /// the compile queue derives its jit options from the same source of
  /// truth (cache keys must match or the background compile is wasted).
  [[nodiscard]] InterpOptions machine_options(Tier tier) const;

 private:
  friend class Lease;
  void release(std::unique_ptr<Machine> machine, Tier tier);
  /// One native construction refused at a promoted tier: count it,
  /// quarantine the known cache entry, and trip the breaker at the
  /// configured threshold (demote to plan, schedule the re-probe).
  void note_native_failure(const std::string& reason);
  /// Re-probe: when an open breaker's backoff has elapsed, restore the
  /// promoted tier so the next construction tries native again.
  void maybe_close_breaker();

  const Program program_;
  const SessionConfig config_;
  std::string hash_;
  std::uint64_t id_ = 0;
  std::atomic<std::uint8_t> tier_{0};

  mutable std::mutex mutex_;
  /// Idle instances, each tagged with the tier it was built at.
  std::vector<std::pair<std::unique_ptr<Machine>, Tier>> idle_;
  SessionStats stats_;
  /// Circuit breaker (all under mutex_): consecutive native failures
  /// since the last success, the open flag + re-probe time, the highest
  /// tier ever promoted to (restored on re-probe), and the cache entry
  /// published by the most recent promotion (quarantined on trip).
  int consecutive_native_failures_ = 0;
  bool breaker_open_ = false;
  std::chrono::steady_clock::time_point breaker_reopen_at_{};
  std::uint8_t promoted_high_water_ = 0;
  std::string promoted_object_path_;
  /// Session creation time for the promotion timeline.
  const std::chrono::steady_clock::time_point created_;
  /// JSON of the newest native report seen on a released instance (kept
  /// here so stats_json never has to build a Machine).
  std::string last_native_report_json_;
};

/// The daemon's session table: get-or-create keyed by session hash.
class SessionRegistry {
 public:
  struct Entry {
    std::shared_ptr<Session> session;
    bool created = false;  ///< this call created the session
  };

  /// Find or create the session for (program, config).
  Entry get_or_create(Program program, const SessionConfig& config);

  [[nodiscard]] std::shared_ptr<Session> find(std::uint64_t id) const;
  [[nodiscard]] std::vector<std::shared_ptr<Session>> all() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> by_hash_;
  std::map<std::uint64_t, std::shared_ptr<Session>> by_id_;
};

}  // namespace glaf::serve
