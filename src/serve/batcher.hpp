#pragma once
// The serve request batcher: connection threads submit independent
// run-requests; a single dispatcher thread drains whatever has queued
// and executes the whole batch as ONE parallel_for sweep over the
// server's thread pool — each request leasing a warmed instance from
// its session. One fork/join then covers N requests, so socket
// concurrency turns into machine-level parallelism without any kernel
// seeing a thread it did not prove safe (pooled instances are serial;
// the parallelism lives entirely ACROSS requests, the embarrassingly
// parallel axis of the SARB column workload).
//
// Batches form naturally: while a sweep is in flight, newly arriving
// requests pile up in the queue and the next drain takes them all (up
// to max_batch). No artificial delay is ever inserted — a lone request
// on an idle server runs immediately, inline on the dispatcher thread.
//
// Completion callbacks run on the dispatcher thread after the sweep
// (never concurrently with each other), so reply writers only need a
// per-connection mutex against the connection's own thread.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/session.hpp"

namespace glaf::serve {

/// One queued run. `done` is invoked exactly once with the call result
/// and the tier that served it (tier is meaningless on error).
struct RunRequest {
  std::shared_ptr<Session> session;
  std::string entry;
  std::vector<double> args;
  std::function<void(StatusOr<double>, Tier)> done;
  /// Absolute deadline (when has_deadline): a request whose deadline
  /// has passed by the time its sweep slot runs is answered with a
  /// typed kDeadlineExceeded without leasing an instance — expired work
  /// must not occupy the machine.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
};

class Batcher {
 public:
  struct Options {
    int threads = 4;             ///< sweep pool width
    std::size_t max_batch = 4096;  ///< drain at most this many per sweep
  };

  struct Stats {
    std::uint64_t requests = 0;  ///< completed requests
    std::uint64_t batches = 0;   ///< sweeps executed
    std::uint64_t max_batch = 0; ///< largest sweep so far
    /// requests/batches is the average batch size; kept separate so the
    /// stats endpoint can report both raw counters.
    std::uint64_t deadline_expired = 0;  ///< answered kDeadlineExceeded
  };

  explicit Batcher(Options options);
  ~Batcher();  ///< completes every queued request, then joins

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  void submit(RunRequest request);

  [[nodiscard]] Stats stats() const;

  /// Requests queued but not yet drained into a sweep (the kHealth
  /// queue-depth field).
  [[nodiscard]] std::size_t queued() const;

 private:
  void dispatcher_main();
  void run_batch(std::vector<RunRequest>& batch);

  const Options options_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<RunRequest> queue_;
  bool stop_ = false;
  Stats stats_;
  std::thread dispatcher_;
};

}  // namespace glaf::serve
