#pragma once
// The glaf-serve wire protocol: length-prefixed binary frames over a
// stream socket (Unix-domain in practice; nothing here assumes it).
//
// Every frame starts with a fixed 12-byte header:
//
//   bytes 0-3   magic "GLAF" (the handshake — a peer speaking anything
//               else is rejected on the first frame)
//   bytes 4-5   protocol version, little-endian u16 (kProtocolVersion)
//   bytes 6-7   message type, little-endian u16 (MsgType)
//   bytes 8-11  payload length, little-endian u32 (<= kMaxPayload)
//
// followed by `length` payload bytes. All multi-byte integers are
// little-endian and packed byte-wise (no struct punning, no host-order
// assumptions); doubles travel as their IEEE-754 bit pattern in a u64,
// so interp-tier results survive the wire bit-exactly.
//
// Robustness contract (tests/serve/protocol_test.cpp): malformed input
// — bad magic, unsupported version, oversized length, truncated frames,
// or arbitrary random bytes — must yield a typed Status from the
// decoder, never a crash and never an over-read. Unknown message TYPES
// decode fine (forward compatibility); the server answers them with a
// typed kError reply instead of dropping the connection.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace glaf::serve {

inline constexpr char kMagic[4] = {'G', 'L', 'A', 'F'};
/// v2 added the per-request deadline field in kRunEntry/kRunBatch and
/// the kHealth/kHealthReply pair. Versions are not negotiated — both
/// peers must speak the same one (the hello exchange verifies it).
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderSize = 12;
/// Frames above this payload size are rejected before any allocation —
/// a garbage length field must not make the daemon try to buffer 4 GiB.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
/// Upper bound on RunBatchMsg::count, checked at decode time BEFORE any
/// arithmetic on count * num_args. Derived from the reply: a BatchReply
/// carries a u32 count plus 9 bytes per result and must itself fit in
/// one kMaxPayload frame. The cap also closes two remote-DoS holes in
/// the request direction — a crafted count/num_args pair whose 64-bit
/// product wraps (2^31 * 2^30 * 8 ≡ 0 mod 2^64 "matches" an empty
/// payload), and a zero-arg batch claiming 2^32-1 calls for 31 bytes.
inline constexpr std::uint32_t kMaxBatchCount = (kMaxPayload - 4) / 9;

/// Message types. Requests are low numbers, replies start at 100; a
/// request's reply is either its paired type or kError.
enum class MsgType : std::uint16_t {
  kHello = 1,        ///< capability probe; empty payload
  kLoadProgram = 2,  ///< LoadProgramMsg -> LoadReplyMsg
  kRunEntry = 3,     ///< RunEntryMsg -> RunReplyMsg
  kRunBatch = 4,     ///< RunBatchMsg -> BatchReplyMsg
  kStats = 5,        ///< StatsMsg -> StatsReplyMsg
  kShutdown = 6,     ///< empty -> kShutdownOk, then the server exits
  kHealth = 7,       ///< empty -> HealthReplyMsg (served even while draining)

  kHelloOk = 100,    ///< HelloReplyMsg
  kLoadReply = 101,
  kRunReply = 102,
  kBatchReply = 103,
  kStatsReply = 104,
  kShutdownOk = 105,
  kHealthReply = 106,
  kError = 199,      ///< ErrorMsg (typed failure reply to any request)
};

/// One decoded frame (header validated, payload complete).
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

// ---- payload primitives ---------------------------------------------------

/// Append-only payload builder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< IEEE bit pattern via u64
  /// u32 length + raw bytes.
  void str(const std::string& s);

  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload cursor: every read either succeeds or returns
/// a kInvalidArgument status; no read ever walks past the payload.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  StatusOr<std::uint8_t> u8();
  StatusOr<std::uint16_t> u16();
  StatusOr<std::uint32_t> u32();
  StatusOr<std::uint64_t> u64();
  StatusOr<double> f64();
  StatusOr<std::string> str();

  /// All payload bytes consumed (messages must leave no trailing junk).
  [[nodiscard]] bool done() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  Status need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- framing --------------------------------------------------------------

/// Serialize a frame (header + payload) ready for the socket.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental frame decoder: feed() arbitrary byte chunks, poll next().
/// A header that fails validation (magic/version/length) poisons the
/// decoder — the connection cannot be resynchronized and must be closed.
class FrameDecoder {
 public:
  /// Buffer `n` bytes. Returns the poisoned status once the stream is
  /// known bad (further feeding is a no-op).
  Status feed(const void* data, std::size_t n);

  /// The next complete frame, std::nullopt while more bytes are needed,
  /// or the poisoned status.
  StatusOr<std::optional<Frame>> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  Status poisoned_ = Status::ok();
};

// ---- blocking socket I/O --------------------------------------------------

/// Write the whole frame to `fd` (retrying short writes / EINTR).
/// `stall_timeout_ms` bounds how long a single stall may last: when the
/// peer's buffer stays full for that long with zero forward progress,
/// the write fails with kInternal instead of blocking forever (the
/// server uses this so one stalled client cannot wedge the dispatcher
/// that delivers every connection's replies). Negative means wait
/// indefinitely — the classic blocking behavior clients want.
Status write_frame(int fd, const Frame& frame, int stall_timeout_ms = -1);

/// Read exactly one frame from `fd`. kFailedPrecondition "peer closed"
/// on clean EOF at a frame boundary; kInvalidArgument via the decoder's
/// poisoned status on malformed bytes; kInternal on socket errors and on
/// EOF mid-frame (the mid-request-disconnect case). `stall_timeout_ms`
/// bounds how long a single read may sit with zero bytes arriving: when
/// the peer goes silent for that long mid-wait, the read fails with
/// kInternal instead of blocking forever (how the client survives a
/// wedged daemon). Negative means wait indefinitely.
StatusOr<Frame> read_frame(int fd, int stall_timeout_ms = -1);

/// Same, but decoding through a caller-owned decoder. A single read(2)
/// can pull bytes of the NEXT pipelined frame along with the current
/// one; a fresh decoder per call would silently drop them. Anyone
/// reading a stream that may carry back-to-back frames (the server's
/// per-connection reader, a client draining pipelined replies) must
/// keep one decoder per stream and pass it here.
StatusOr<Frame> read_frame(int fd, FrameDecoder& decoder,
                           int stall_timeout_ms = -1);

// ---- typed messages -------------------------------------------------------

/// Execution configuration a client requests for a loaded program.
/// target_tier is the ceiling the session's async compile ladder climbs
/// to: 0 stays on the plan VM, 1 adds the bit-identical interp-math
/// native kernel, 2 adds the ulp-bounded opt kernel on top.
struct ExecConfig {
  std::uint8_t target_tier = 1;  ///< 0=plan, 1=native interp, 2=native opt
  std::uint8_t policy = 0;       ///< DirectivePolicy v0..v3
  bool portable = false;         ///< opt tier without -march=native
};

struct LoadProgramMsg {
  /// Exactly one of the two is nonempty: a builtin program name
  /// ("sarb", "fun3d") or serialized GLAF IR text.
  std::string builtin;
  std::string source;
  ExecConfig config;
};

struct LoadReplyMsg {
  std::uint64_t session_id = 0;
  std::uint8_t current_tier = 0;  ///< tier serving right now (0..2)
  std::string program_hash;       ///< full hex session key
};

struct RunEntryMsg {
  std::uint64_t session_id = 0;
  std::string entry;
  std::vector<double> args;
  /// Milliseconds the server may spend before answering; 0 = no
  /// deadline. An expired request is answered with a typed
  /// kDeadlineExceeded instead of occupying a batcher sweep slot.
  std::uint32_t deadline_ms = 0;
};

struct RunReplyMsg {
  std::uint8_t tier = 0;  ///< tier that served this call (0..2)
  double result = 0.0;
};

/// `count` independent calls of one entry; scalars holds count*num_args
/// doubles (call i's arguments are the i-th consecutive group).
struct RunBatchMsg {
  std::uint64_t session_id = 0;
  std::string entry;
  std::uint32_t count = 0;
  std::uint32_t num_args = 0;
  std::vector<double> scalars;
  /// Deadline for the whole batch; 0 = none (see RunEntryMsg).
  std::uint32_t deadline_ms = 0;
};

struct BatchReplyMsg {
  std::vector<RunReplyMsg> results;
};

struct StatsMsg {
  std::uint64_t session_id = 0;  ///< 0 = whole-server stats
};

struct StatsReplyMsg {
  std::string json;
};

struct HelloReplyMsg {
  std::uint16_t protocol_version = kProtocolVersion;
  std::uint64_t server_pid = 0;
};

/// Readiness and load snapshot (answer to an empty kHealth frame).
/// Served even while the daemon drains, so orchestration can
/// distinguish "draining" from "dead".
struct HealthReplyMsg {
  std::uint8_t ready = 0;          ///< accepting new run requests
  std::uint8_t draining = 0;       ///< drain in progress (SIGTERM)
  std::uint8_t top_tier = 0;       ///< highest serving tier across sessions
  std::uint32_t sessions = 0;
  std::uint32_t inflight = 0;      ///< admitted runs not yet answered
  std::uint32_t queued = 0;        ///< batcher queue depth right now
  std::uint32_t compile_queued = 0;///< compile ladder jobs pending/running
  std::uint32_t max_inflight = 0;  ///< admission-control bound (0 = none)
};

struct ErrorMsg {
  std::uint32_t code = 0;  ///< StatusCode of the failure
  std::string message;
};

// Encoders produce a complete frame; decoders validate the payload
// exhaustively (trailing bytes are an error).
Frame encode(const LoadProgramMsg& m);
Frame encode(const LoadReplyMsg& m);
Frame encode(const RunEntryMsg& m);
Frame encode(const RunReplyMsg& m);
Frame encode(const RunBatchMsg& m);
Frame encode(const BatchReplyMsg& m);
Frame encode(const StatsMsg& m);
Frame encode(const StatsReplyMsg& m);
Frame encode(const HelloReplyMsg& m);
Frame encode(const HealthReplyMsg& m);
Frame encode(const ErrorMsg& m);

StatusOr<LoadProgramMsg> decode_load_program(const Frame& frame);
StatusOr<LoadReplyMsg> decode_load_reply(const Frame& frame);
StatusOr<RunEntryMsg> decode_run_entry(const Frame& frame);
StatusOr<RunReplyMsg> decode_run_reply(const Frame& frame);
StatusOr<RunBatchMsg> decode_run_batch(const Frame& frame);
StatusOr<BatchReplyMsg> decode_batch_reply(const Frame& frame);
StatusOr<StatsMsg> decode_stats(const Frame& frame);
StatusOr<StatsReplyMsg> decode_stats_reply(const Frame& frame);
StatusOr<HelloReplyMsg> decode_hello_reply(const Frame& frame);
StatusOr<HealthReplyMsg> decode_health_reply(const Frame& frame);
StatusOr<ErrorMsg> decode_error(const Frame& frame);

/// An ErrorMsg for `status`, ready to send.
Frame error_frame(const Status& status);

}  // namespace glaf::serve
