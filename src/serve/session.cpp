#include "serve/session.hpp"

#include <algorithm>

#include "core/serialize.hpp"
#include "interp/report_json.hpp"
#include "jit/cache.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace glaf::serve {

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kPlan:
      return "plan";
    case Tier::kNativeInterp:
      return "native-interp";
    case Tier::kNativeOpt:
      return "native-opt";
  }
  return "?";
}

Lease::Lease(Lease&& other) noexcept
    : session_(other.session_), machine_(std::move(other.machine_)),
      tier_(other.tier_) {
  other.session_ = nullptr;
}

Lease::~Lease() {
  if (session_ != nullptr && machine_ != nullptr) {
    session_->release(std::move(machine_), tier_);
  }
}

Session::Session(Program program, SessionConfig config)
    : program_(std::move(program)), config_(std::move(config)),
      created_(std::chrono::steady_clock::now()) {
  // The key covers everything that changes execution results or the
  // compiled kernel's cache identity: the full program text and the
  // config knobs. The compiler identity is NOT folded in here — the jit
  // cache already keys it, and the session pool is process-local.
  const std::string config_text =
      cat("tier=", static_cast<int>(config_.target_tier), ";policy=",
          glaf::to_string(config_.policy), ";portable=",
          config_.portable ? 1 : 0);
  Hash128 h = fnv1a128(serialize_program(program_));
  h = fnv1a128(std::string(1, '\0'), h);
  h = fnv1a128(config_text, h);
  hash_ = hex_digest(h);
  id_ = fnv1a64(hash_);
}

InterpOptions Session::machine_options(Tier tier) const {
  InterpOptions o;
  // Sessions run each request serially and let the batcher provide
  // parallelism ACROSS requests: pooled instances never own a thread
  // pool, so a sweep of N requests is N independent serial kernels on
  // the server pool — one fork/join for the whole batch.
  o.engine = tier == Tier::kPlan ? ExecEngine::kPlan : ExecEngine::kNative;
  o.parallel = false;
  o.num_threads = 1;
  o.policy = config_.policy;
  o.native_cc = config_.cc;
  o.native_cache_dir = config_.cache_dir;
  o.native_model = tier == Tier::kNativeOpt ? NumericModel::kOpt
                                            : NumericModel::kInterp;
  o.native_portable = config_.portable;
  return o;
}

StatusOr<Lease> Session::acquire() {
  maybe_close_breaker();
  const Tier want = tier();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < idle_.size(); ++i) {
      if (idle_[i].second != want) continue;
      std::unique_ptr<Machine> machine = std::move(idle_[i].first);
      idle_.erase(idle_.begin() + static_cast<long>(i));
      return Lease(this, std::move(machine), want);
    }
  }
  // Pool miss: construct outside the lock (native construction dlopens
  // the cached kernel; plan construction compiles plans — neither may
  // serialize other acquires).
  auto machine = std::make_unique<Machine>(program_, machine_options(want));
  Tier got = want;
  if (want != Tier::kPlan) {
    std::string refusal;
    if (fault::should_fail("serve.pool.construct")) {
      refusal = "fault injected: native instance construction";
    } else if (!machine->native_report().available) {
      // The promoted kernel refused to load (e.g. the cache entry
      // vanished and no compiler is available): degrade to the plan
      // tier rather than failing the request.
      refusal = machine->native_report().fallback_reason.empty()
                    ? "native kernel refused to load"
                    : machine->native_report().fallback_reason;
    }
    if (!refusal.empty()) {
      note_native_failure(refusal);
      // Serve from a genuine plan-tier instance so the advertised tier
      // matches what actually executes.
      machine = std::make_unique<Machine>(program_,
                                          machine_options(Tier::kPlan));
      got = Tier::kPlan;
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      consecutive_native_failures_ = 0;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.instances_created;
  }
  return Lease(this, std::move(machine), got);
}

void Session::note_native_failure(const std::string& reason) {
  std::string quarantine;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.native_load_failures;
    ++consecutive_native_failures_;
    if (breaker_open_ ||
        consecutive_native_failures_ < config_.breaker_threshold) {
      return;
    }
    // Trip: demote the ladder to the plan tier and schedule the
    // re-probe. The backoff doubles per consecutive trip so a kernel
    // that keeps refusing costs ever fewer wasted constructions.
    breaker_open_ = true;
    ++stats_.breaker_trips;
    stats_.breaker_reason = reason;
    consecutive_native_failures_ = 0;
    const auto shift =
        std::min<std::uint64_t>(stats_.breaker_trips - 1, 5);
    breaker_reopen_at_ =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.breaker_backoff_ms << shift);
    tier_.store(static_cast<std::uint8_t>(Tier::kPlan),
                std::memory_order_release);
    quarantine = promoted_object_path_;
  }
  // Quarantine outside the lock (filesystem): the published entry this
  // session was promoted on is presumed bad; removing it makes the
  // re-probe recompile fresh instead of re-loading the same bytes.
  if (!quarantine.empty()) {
    jit::KernelCache(config_.cache_dir).invalidate(quarantine);
  }
}

void Session::maybe_close_breaker() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!breaker_open_ ||
      std::chrono::steady_clock::now() < breaker_reopen_at_) {
    return;
  }
  // Backoff elapsed: restore the promoted tier and let the next
  // construction probe the native path again. A failure re-trips with a
  // doubled backoff; a success resets the failure count.
  breaker_open_ = false;
  tier_.store(promoted_high_water_, std::memory_order_release);
}

void Session::release(std::unique_ptr<Machine> machine, Tier tier) {
  std::unique_ptr<Machine> retired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tier != Tier::kPlan && machine->native_report().available) {
      last_native_report_json_ =
          native_report_json(machine->native_report());
    }
    if (tier == this->tier() && idle_.size() < config_.max_pool) {
      idle_.emplace_back(std::move(machine), tier);
      return;
    }
    ++stats_.instances_retired;
    retired = std::move(machine);
  }
  // `retired` destructs here, outside the lock (dlclose + storage).
}

void Session::promote(Tier tier, const std::string& object_path) {
  std::uint8_t want = static_cast<std::uint8_t>(tier);
  std::uint8_t have = tier_.load(std::memory_order_acquire);
  while (want > have) {
    if (tier_.compare_exchange_weak(have, want, std::memory_order_acq_rel)) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        created_)
              .count();
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.promotions.emplace_back(tier, elapsed);
      // A freshly published kernel is evidence the native path works:
      // close an open breaker and remember what to quarantine next time.
      promoted_high_water_ = std::max(promoted_high_water_, want);
      if (!object_path.empty()) promoted_object_path_ = object_path;
      breaker_open_ = false;
      consecutive_native_failures_ = 0;
      return;
    }
  }
}

void Session::record_compile_error(const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.compile_error = message;
}

void Session::record_run(Tier tier) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (tier) {
    case Tier::kPlan:
      ++stats_.runs_plan;
      break;
    case Tier::kNativeInterp:
      ++stats_.runs_native_interp;
      break;
    case Tier::kNativeOpt:
      ++stats_.runs_native_opt;
      break;
  }
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionStats out = stats_;
  out.pooled_idle = idle_.size();
  out.tier = static_cast<Tier>(tier_.load(std::memory_order_acquire));
  out.breaker_open = breaker_open_;
  return out;
}

std::string Session::stats_json() const {
  const SessionStats s = stats();
  std::string native_report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    native_report = last_native_report_json_;
  }
  JsonWriter w;
  w.begin_object();
  w.key("session_id");
  w.value(id_);
  w.key("program_hash");
  w.value(hash_);
  w.key("tier");
  w.value(to_string(s.tier));
  w.key("target_tier");
  w.value(to_string(config_.target_tier));
  w.key("policy");
  w.value(glaf::to_string(config_.policy));
  w.key("runs_plan");
  w.value(s.runs_plan);
  w.key("runs_native_interp");
  w.value(s.runs_native_interp);
  w.key("runs_native_opt");
  w.value(s.runs_native_opt);
  w.key("instances_created");
  w.value(s.instances_created);
  w.key("instances_retired");
  w.value(s.instances_retired);
  w.key("pooled_idle");
  w.value(static_cast<std::uint64_t>(s.pooled_idle));
  w.key("compile_error");
  w.value(s.compile_error);
  w.key("native_load_failures");
  w.value(s.native_load_failures);
  w.key("breaker_trips");
  w.value(s.breaker_trips);
  w.key("breaker_open");
  w.value(s.breaker_open);
  w.key("breaker_reason");
  w.value(s.breaker_reason);
  w.key("promotions");
  w.begin_array();
  for (const auto& [tier, seconds] : s.promotions) {
    w.begin_object();
    w.key("tier");
    w.value(to_string(tier));
    w.key("seconds_after_load");
    w.value(seconds);
    w.end_object();
  }
  w.end_array();
  w.key("native_report");
  if (native_report.empty()) {
    w.raw("null");
  } else {
    w.raw(native_report);
  }
  w.end_object();
  return std::move(w).str();
}

SessionRegistry::Entry SessionRegistry::get_or_create(
    Program program, const SessionConfig& config) {
  // Build the candidate outside the lock (hashing only — sessions warm
  // lazily), then insert-or-discard under it.
  auto candidate = std::make_shared<Session>(std::move(program), config);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_hash_.find(candidate->hash());
  if (it != by_hash_.end()) return {it->second, false};
  by_hash_[candidate->hash()] = candidate;
  by_id_[candidate->id()] = candidate;
  return {candidate, true};
}

std::shared_ptr<Session> SessionRegistry::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it != by_id_.end() ? it->second : nullptr;
}

std::vector<std::shared_ptr<Session>> SessionRegistry::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(by_id_.size());
  for (const auto& [id, session] : by_id_) out.push_back(session);
  return out;
}

}  // namespace glaf::serve
