#include "serve/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>

#include "core/serialize.hpp"
#include "core/validate.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace glaf::serve {

namespace {

/// SIGPIPE would kill the daemon on a write to a half-closed socket;
/// every write path checks errno instead. Installed once, process-wide.
void ignore_sigpipe() {
  static const bool once = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)once;
}

}  // namespace

StatusOr<SessionConfig> resolve_config(const ExecConfig& wire,
                                       const Server::Options& server) {
  if (wire.target_tier > 2) {
    return invalid_argument("target_tier out of range (0..2)");
  }
  if (wire.policy > 3) {
    return invalid_argument("policy out of range (v0..v3)");
  }
  SessionConfig config;
  config.target_tier = static_cast<Tier>(wire.target_tier);
  config.policy = static_cast<DirectivePolicy>(wire.policy);
  config.portable = wire.portable;
  config.cc = server.cc;
  config.cache_dir = server.cache_dir;
  config.max_pool = server.max_pool;
  config.breaker_threshold = server.breaker_threshold;
  config.breaker_backoff_ms = server.breaker_backoff_ms;
  return config;
}

StatusOr<Program> resolve_program(const LoadProgramMsg& msg) {
  Program program;
  if (!msg.builtin.empty()) {
    if (!msg.source.empty()) {
      return invalid_argument("load: builtin and source are exclusive");
    }
    if (msg.builtin == "sarb") {
      program = fuliou::build_sarb_program();
    } else if (msg.builtin == "fun3d") {
      program = fun3d::build_fun3d_glaf_program();
    } else {
      return invalid_argument("unknown builtin '" + msg.builtin +
                              "' (try sarb or fun3d)");
    }
  } else if (!msg.source.empty()) {
    StatusOr<Program> parsed = parse_program(msg.source);
    if (!parsed.is_ok()) return parsed.status();
    program = std::move(parsed).value();
  } else {
    return invalid_argument("load: neither builtin nor source given");
  }
  const std::vector<Diagnostic> diags = validate(program);
  if (!is_valid(diags)) {
    std::string detail = "program failed validation";
    for (const Diagnostic& d : diags) {
      if (d.severity != Severity::kError) continue;
      detail += "; " + d.where + ": " + d.message;
    }
    return invalid_argument(detail);
  }
  return program;
}

Server::Server(Options options)
    : options_(std::move(options)),
      batcher_(Batcher::Options{options_.threads, options_.max_batch}) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return failed_precondition("server already running");
  }
  if (options_.socket_path.empty()) {
    return invalid_argument("no socket path");
  }
  ignore_sigpipe();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return invalid_argument("socket path too long: " + options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("socket: ") + std::strerror(errno));
  }
  // A stale socket file from a crashed daemon blocks bind; remove it.
  // A LIVE daemon on the path is also clobbered — single-owner paths
  // are the deployment contract (the CLI defaults to a per-user path).
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        internal_error("bind " + options_.socket_path + ": " +
                       std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st =
        internal_error(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }

  listen_fd_.store(fd, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_ = false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_main(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Either never started, or another thread is (or finished) tearing
    // down — a client kShutdown races the destructor here. Wait for the
    // in-flight stop so the caller may safely destroy the server.
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  // Closing the listener makes poll() in accept_main return; the
  // running_ flag makes it exit.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) ::close(lfd);
  if (accept_thread_.joinable()) accept_thread_.join();

  // Wake every connection reader blocked in read_frame. Setting
  // stopping_ under conn_mutex_ first hands this thread sole ownership
  // of every remaining reader handle: a reader that reaches its
  // self-cleanup after this point leaves its handle for us to join,
  // and one that cleaned up before is no longer in the snapshot.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    stopping_ = true;
    conns = connections_;
  }
  for (const auto& conn : conns) {
    conn->open.store(false, std::memory_order_release);
    // fd is guarded by write_mutex: the reader may be closing it
    // concurrently, and shutdown(2) on a recycled descriptor would hit
    // an unrelated connection.
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.clear();
    stopping_ = false;  // the server object is reusable after stop()
  }
  ::unlink(options_.socket_path.c_str());
  {
    // Notify under the lock: a waiter may destroy this object the
    // moment it observes stopped_, so the cv must not be touched after
    // the mutex is released.
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_ = true;
    stop_cv_.notify_all();
  }
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stopped_; });
}

void Server::drain() {
  if (!running_.load(std::memory_order_acquire)) {
    stop();
    return;
  }
  draining_.store(true, std::memory_order_release);
  // Stop accepting: closing the listener makes accept_main exit (the
  // exchange also keeps the later stop() from double-closing). Existing
  // connections stay alive so pending replies, kHealth and kStats still
  // flow.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) ::close(lfd);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_timeout_ms);
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop();
  draining_.store(false, std::memory_order_release);
}

HealthReplyMsg Server::health() const {
  HealthReplyMsg h;
  const bool draining = draining_.load(std::memory_order_acquire);
  h.ready =
      running_.load(std::memory_order_acquire) && !draining ? 1 : 0;
  h.draining = draining ? 1 : 0;
  const std::vector<std::shared_ptr<Session>> sessions = registry_.all();
  h.sessions = static_cast<std::uint32_t>(sessions.size());
  for (const std::shared_ptr<Session>& session : sessions) {
    h.top_tier = std::max(h.top_tier,
                          static_cast<std::uint8_t>(session->tier()));
  }
  h.inflight =
      static_cast<std::uint32_t>(inflight_.load(std::memory_order_acquire));
  h.queued = static_cast<std::uint32_t>(batcher_.queued());
  h.compile_queued = static_cast<std::uint32_t>(compile_queue_.depth());
  h.max_inflight = static_cast<std::uint32_t>(options_.max_inflight);
  return h;
}

bool Server::admit_runs(const std::shared_ptr<Connection>& conn,
                        std::size_t count, Status* why) {
  if (draining_.load(std::memory_order_acquire)) {
    ++requests_shed_;
    *why = busy("server is draining; retry against its replacement");
    return false;
  }
  // The increments race other admitters, so the bound can overshoot by
  // the number of racing connections — admission control is a load
  // valve, not an exact semaphore. Undershoot never happens: every
  // admitted slot is balanced by exactly one finish_run().
  if (options_.max_inflight != 0 &&
      inflight_.load(std::memory_order_acquire) + count >
          options_.max_inflight) {
    ++requests_shed_;
    *why = busy(cat("server at capacity (", options_.max_inflight,
                    " requests in flight); retry with backoff"));
    return false;
  }
  if (options_.max_conn_pending != 0 &&
      conn->pending.load(std::memory_order_acquire) + count >
          options_.max_conn_pending) {
    ++requests_shed_;
    *why = busy(cat("connection has ", options_.max_conn_pending,
                    " unanswered requests; read replies before sending"
                    " more"));
    return false;
  }
  inflight_.fetch_add(count, std::memory_order_acq_rel);
  conn->pending.fetch_add(count, std::memory_order_acq_rel);
  return true;
}

void Server::finish_run(const std::shared_ptr<Connection>& conn) {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  conn->pending.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::accept_main() {
  while (running_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already reclaimed the listener
    pollfd pfd{lfd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (!running_.load(std::memory_order_acquire)) return;
    if (rc <= 0) continue;  // timeout or EINTR: re-check the flag
    const int client = ::accept(lfd, nullptr, nullptr);
    if (client < 0) continue;
    if (fault::should_fail("serve.accept")) {
      // The connection dies at birth (accept-time resource exhaustion,
      // a load balancer yanking the peer). Clients see a reset and must
      // reconnect.
      ::close(client);
      continue;
    }

    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    {
      // Assign the reader handle under conn_mutex_: a connection that
      // dies instantly reaches its self-cleanup (which takes this
      // mutex before touching conn->reader) only after the assignment
      // is complete.
      std::lock_guard<std::mutex> lock(conn_mutex_);
      ++connections_total_;
      connections_.push_back(conn);
      conn->reader = std::thread([this, conn] { connection_main(conn); });
    }
  }
}

void Server::connection_main(const std::shared_ptr<Connection>& conn) {
  // One decoder for the connection's lifetime: a single read(2) may
  // deliver the tail of one frame plus the head (or all) of the next
  // pipelined one, and those buffered bytes must survive to the next
  // loop iteration — a fresh decoder per frame would drop them.
  FrameDecoder decoder;
  while (conn->open.load(std::memory_order_acquire)) {
    StatusOr<Frame> frame = read_frame(conn->fd, decoder);
    if (!frame.is_ok()) {
      // Clean close at a frame boundary is the normal goodbye; anything
      // else (poisoned decoder, mid-frame EOF, socket error) gets a
      // best-effort typed error reply before the connection dies. The
      // daemon survives either way.
      if (frame.status().code() != StatusCode::kFailedPrecondition) {
        {
          std::lock_guard<std::mutex> lock(conn_mutex_);
          ++protocol_errors_;
        }
        send(conn, error_frame(frame.status()));
      }
      break;
    }
    bool keep = true;
    try {
      keep = handle_frame(conn, frame.value());
    } catch (const std::exception& e) {
      // Handlers are Status-based, but allocation can still throw on a
      // giant-yet-well-formed request; "never a crash on input bytes"
      // means containing that too. Best-effort error, drop the client.
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        ++protocol_errors_;
      }
      send(conn, error_frame(internal_error(
                     std::string("request failed: ") + e.what())));
      keep = false;
    }
    if (!keep) break;
  }

  conn->open.store(false, std::memory_order_release);
  {
    // Close under write_mutex: a batcher done-callback that already
    // passed send()'s open check must find fd == -1 here rather than
    // write into a closed — or worse, recycled — descriptor.
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    ::close(conn->fd);
    conn->fd = -1;
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  // During stop() the handle belongs to stop(), which is about to join
  // this very thread; touching it here would race that join.
  if (stopping_) return;
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->get() == conn.get()) {
      // The reader thread is *this* thread: detach so the vector's
      // thread handle can be destroyed while we finish up. Safe against
      // stop(): it only joins handles after setting stopping_ under
      // conn_mutex_, which we hold.
      if (it->get()->reader.joinable()) it->get()->reader.detach();
      connections_.erase(it);
      break;
    }
  }
}

bool Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHello: {
      HelloReplyMsg reply;
      reply.server_pid = static_cast<std::uint64_t>(::getpid());
      send(conn, encode(reply));
      return true;
    }
    case MsgType::kLoadProgram:
      handle_load(conn, frame);
      return true;
    case MsgType::kRunEntry:
      handle_run(conn, frame);
      return true;
    case MsgType::kRunBatch:
      handle_batch(conn, frame);
      return true;
    case MsgType::kStats:
      handle_stats(conn, frame);
      return true;
    case MsgType::kHealth:
      send(conn, encode(health()));
      return true;
    case MsgType::kShutdown: {
      send(conn, Frame{MsgType::kShutdownOk, {}});
      // stop() joins this very reader thread; hand the job to a
      // detached thread and let the reader exit normally.
      std::thread([this] { stop(); }).detach();
      return false;
    }
    default: {
      // Unknown or reply-typed frames: typed error, connection lives.
      send(conn, error_frame(invalid_argument(
                     "unsupported message type " +
                     std::to_string(static_cast<unsigned>(frame.type)))));
      return true;
    }
  }
}

void Server::handle_load(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  const StatusOr<LoadProgramMsg> msg = decode_load_program(frame);
  if (!msg.is_ok()) {
    send(conn, error_frame(msg.status()));
    return;
  }
  const StatusOr<SessionConfig> config =
      resolve_config(msg.value().config, options_);
  if (!config.is_ok()) {
    send(conn, error_frame(config.status()));
    return;
  }
  StatusOr<Program> program = resolve_program(msg.value());
  if (!program.is_ok()) {
    send(conn, error_frame(program.status()));
    return;
  }

  const SessionRegistry::Entry entry =
      registry_.get_or_create(std::move(program).value(), config.value());
  if (entry.created && config.value().target_tier > Tier::kPlan) {
    compile_queue_.enqueue(entry.session);
    if (options_.sync_compile) compile_queue_.wait_idle();
  }

  LoadReplyMsg reply;
  reply.session_id = entry.session->id();
  reply.current_tier = static_cast<std::uint8_t>(entry.session->tier());
  reply.program_hash = entry.session->hash();
  send(conn, encode(reply));
}

void Server::handle_run(const std::shared_ptr<Connection>& conn,
                        const Frame& frame) {
  const StatusOr<RunEntryMsg> msg = decode_run_entry(frame);
  if (!msg.is_ok()) {
    send(conn, error_frame(msg.status()));
    return;
  }
  std::shared_ptr<Session> session = registry_.find(msg.value().session_id);
  if (!session) {
    send(conn, error_frame(not_found(
                   "unknown session id " +
                   std::to_string(msg.value().session_id))));
    return;
  }
  Status shed;
  if (!admit_runs(conn, 1, &shed)) {
    send(conn, error_frame(shed));
    return;
  }
  RunRequest request;
  request.session = std::move(session);
  request.entry = msg.value().entry;
  request.args = msg.value().args;
  if (msg.value().deadline_ms > 0) {
    request.has_deadline = true;
    request.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(msg.value().deadline_ms);
  }
  request.done = [this, conn](StatusOr<double> result, Tier tier) {
    if (!result.is_ok()) {
      send(conn, error_frame(result.status()));
    } else {
      RunReplyMsg reply;
      reply.tier = static_cast<std::uint8_t>(tier);
      reply.result = result.value();
      send(conn, encode(reply));
    }
    finish_run(conn);
  };
  batcher_.submit(std::move(request));
}

void Server::handle_batch(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  const StatusOr<RunBatchMsg> msg = decode_run_batch(frame);
  if (!msg.is_ok()) {
    send(conn, error_frame(msg.status()));
    return;
  }
  const RunBatchMsg& batch = msg.value();
  std::shared_ptr<Session> session = registry_.find(batch.session_id);
  if (!session) {
    send(conn, error_frame(not_found("unknown session id " +
                                     std::to_string(batch.session_id))));
    return;
  }
  if (batch.count == 0) {
    send(conn, encode(BatchReplyMsg{}));
    return;
  }
  Status shed;
  if (!admit_runs(conn, batch.count, &shed)) {
    send(conn, error_frame(shed));
    return;
  }
  std::chrono::steady_clock::time_point deadline{};
  const bool has_deadline = batch.deadline_ms > 0;
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(batch.deadline_ms);
  }

  // Shared collector: each sub-request fills its slot; the last one to
  // land writes the reply. Completion callbacks all run serially on the
  // batcher dispatcher, but a batch larger than max_batch spans several
  // sweeps, so the counter still has to be the source of truth.
  struct Collector {
    std::mutex mutex;
    std::vector<RunReplyMsg> results;
    std::size_t remaining = 0;
    Status first_error;
  };
  auto collector = std::make_shared<Collector>();
  collector->results.resize(batch.count);
  collector->remaining = batch.count;

  for (std::uint32_t i = 0; i < batch.count; ++i) {
    RunRequest request;
    request.session = session;
    request.entry = batch.entry;
    request.args.assign(
        batch.scalars.begin() + static_cast<std::ptrdiff_t>(i) * batch.num_args,
        batch.scalars.begin() +
            static_cast<std::ptrdiff_t>(i + 1) * batch.num_args);
    request.has_deadline = has_deadline;
    request.deadline = deadline;
    request.done = [this, conn, collector, i](StatusOr<double> result,
                                              Tier tier) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(collector->mutex);
        if (result.is_ok()) {
          collector->results[i].tier = static_cast<std::uint8_t>(tier);
          collector->results[i].result = result.value();
        } else if (collector->first_error.is_ok()) {
          collector->first_error = result.status();
        }
        last = (--collector->remaining == 0);
      }
      if (last) {
        if (!collector->first_error.is_ok()) {
          send(conn, error_frame(collector->first_error));
        } else {
          send(conn, encode(BatchReplyMsg{std::move(collector->results)}));
        }
      }
      finish_run(conn);
    };
    batcher_.submit(std::move(request));
  }
}

void Server::handle_stats(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  const StatusOr<StatsMsg> msg = decode_stats(frame);
  if (!msg.is_ok()) {
    send(conn, error_frame(msg.status()));
    return;
  }
  StatsReplyMsg reply;
  if (msg.value().session_id == 0) {
    reply.json = stats_json();
  } else {
    const std::shared_ptr<Session> session =
        registry_.find(msg.value().session_id);
    if (!session) {
      send(conn, error_frame(not_found(
                     "unknown session id " +
                     std::to_string(msg.value().session_id))));
      return;
    }
    reply.json = session->stats_json();
  }
  send(conn, encode(reply));
}

std::string Server::stats_json() const {
  const Batcher::Stats bstats = batcher_.stats();
  std::uint64_t conns_total = 0;
  std::uint64_t proto_errors = 0;
  std::size_t conns_open = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns_total = connections_total_;
    proto_errors = protocol_errors_;
    conns_open = connections_.size();
  }
  JsonWriter w;
  w.begin_object();
  w.key("pid");
  w.value(static_cast<std::uint64_t>(::getpid()));
  w.key("threads");
  w.value(options_.threads);
  w.key("connections_total");
  w.value(conns_total);
  w.key("connections_open");
  w.value(static_cast<std::uint64_t>(conns_open));
  w.key("protocol_errors");
  w.value(proto_errors);
  w.key("compiles_completed");
  w.value(compile_queue_.completed());
  w.key("draining");
  w.value(draining_.load(std::memory_order_acquire));
  w.key("inflight");
  w.value(static_cast<std::uint64_t>(
      inflight_.load(std::memory_order_acquire)));
  w.key("requests_shed");
  w.value(requests_shed_.load(std::memory_order_acquire));
  w.key("batcher");
  w.begin_object();
  w.key("requests");
  w.value(bstats.requests);
  w.key("batches");
  w.value(bstats.batches);
  w.key("max_batch");
  w.value(bstats.max_batch);
  w.key("deadline_expired");
  w.value(bstats.deadline_expired);
  w.end_object();
  w.key("sessions");
  w.begin_array();
  for (const std::shared_ptr<Session>& session : registry_.all()) {
    w.raw(session->stats_json());
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

void Server::send(const std::shared_ptr<Connection>& conn,
                  const Frame& frame) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  // Re-check under the lock: the reader closes fd (and sets it to -1)
  // under write_mutex, so a callback that passed the open check above
  // while the connection was dying cannot reach write(2) on a closed
  // or recycled descriptor.
  if (conn->fd < 0 || !conn->open.load(std::memory_order_acquire)) return;
  const Status st = write_frame(conn->fd, frame, options_.write_timeout_ms);
  if (!st.is_ok()) {
    // Peer is gone (or stopped reading long enough to blow the write
    // timeout); pending callbacks see open == false and drop.
    conn->open.store(false, std::memory_order_release);
  }
}

}  // namespace glaf::serve
