#include "serve/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/fault.hpp"
#include "support/strings.hpp"

namespace glaf::serve {

// ---- Writer ---------------------------------------------------------------

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

// ---- Reader ---------------------------------------------------------------

Status Reader::need(std::size_t n) {
  if (size_ - pos_ < n) {
    return invalid_argument(cat("truncated payload: need ", n, " bytes at ",
                                pos_, ", have ", size_ - pos_));
  }
  return Status::ok();
}

StatusOr<std::uint8_t> Reader::u8() {
  if (Status s = need(1); !s.is_ok()) return s;
  return data_[pos_++];
}

StatusOr<std::uint16_t> Reader::u16() {
  if (Status s = need(2); !s.is_ok()) return s;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i));
  }
  pos_ += 2;
  return v;
}

StatusOr<std::uint32_t> Reader::u32() {
  if (Status s = need(4); !s.is_ok()) return s;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<std::uint64_t> Reader::u64() {
  if (Status s = need(8); !s.is_ok()) return s;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<double> Reader::f64() {
  StatusOr<std::uint64_t> bits = u64();
  if (!bits.is_ok()) return bits.status();
  double v = 0.0;
  const std::uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof v);
  return v;
}

StatusOr<std::string> Reader::str() {
  StatusOr<std::uint32_t> len = u32();
  if (!len.is_ok()) return len.status();
  if (Status s = need(len.value()); !s.is_ok()) return s;
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len.value());
  pos_ += len.value();
  return out;
}

// ---- framing --------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + frame.payload.size());
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  const std::uint16_t version = kProtocolVersion;
  const std::uint16_t type = static_cast<std::uint16_t>(frame.type);
  const std::uint32_t len = static_cast<std::uint32_t>(frame.payload.size());
  out.push_back(static_cast<std::uint8_t>(version));
  out.push_back(static_cast<std::uint8_t>(version >> 8));
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(type >> 8));
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

Status FrameDecoder::feed(const void* data, std::size_t n) {
  if (!poisoned_.is_ok()) return poisoned_;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + n);
  return Status::ok();
}

StatusOr<std::optional<Frame>> FrameDecoder::next() {
  if (!poisoned_.is_ok()) return poisoned_;
  if (buf_.size() - pos_ < kHeaderSize) {
    // Compact once the consumed prefix dominates the buffer.
    if (pos_ > 0 && pos_ >= buf_.size() / 2) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
      pos_ = 0;
    }
    return std::optional<Frame>();
  }
  const std::uint8_t* h = buf_.data() + pos_;
  if (std::memcmp(h, kMagic, 4) != 0) {
    poisoned_ = invalid_argument("bad frame magic (not a GLAF peer)");
    return poisoned_;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(h[4] | (std::uint16_t{h[5]} << 8));
  if (version != kProtocolVersion) {
    poisoned_ = invalid_argument(cat("unsupported protocol version ",
                                     version, " (this peer speaks ",
                                     kProtocolVersion, ")"));
    return poisoned_;
  }
  const std::uint16_t type =
      static_cast<std::uint16_t>(h[6] | (std::uint16_t{h[7]} << 8));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(h[8 + i]) << (8 * i);
  }
  if (len > kMaxPayload) {
    poisoned_ = invalid_argument(
        cat("oversized frame: ", len, " bytes (max ", kMaxPayload, ")"));
    return poisoned_;
  }
  if (buf_.size() - pos_ < kHeaderSize + len) return std::optional<Frame>();
  if (len > 0 && fault::should_fail("serve.frame.alloc")) {
    // Models the payload allocation failing (a giant-yet-well-formed
    // frame under memory pressure). The stream position is lost, so the
    // connection must die — poison, exactly like a real bad_alloc path.
    poisoned_ = internal_error("fault injected: frame payload allocation");
    return poisoned_;
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.assign(h + kHeaderSize, h + kHeaderSize + len);
  pos_ += kHeaderSize + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return std::optional<Frame>(std::move(frame));
}

Status write_frame(int fd, const Frame& frame, int stall_timeout_ms) {
  if (fault::should_fail("serve.sock.write_stall")) {
    // A peer that reads slowly: delay, then proceed. Long enough to
    // pile requests into one batcher sweep, short enough that a soak
    // with thousands of requests still finishes.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (fault::should_fail("serve.sock.write")) {
    return internal_error("fault injected: socket write failed");
  }
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_DONTWAIT makes this send non-blocking without touching the
    // fd's flags (the reader side keeps its blocking read_frame);
    // MSG_NOSIGNAL spares us SIGPIPE on a half-closed peer.
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The peer's buffer is full. Wait for drain, but give each stall
      // at most stall_timeout_ms of zero progress before declaring the
      // peer dead — a wedged client must not block the caller forever.
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, stall_timeout_ms);
      if (rc == 0) {
        return internal_error(cat("socket write stalled for ",
                                  stall_timeout_ms, " ms (peer not reading)"));
      }
      if (rc < 0 && errno != EINTR) {
        return internal_error(cat("socket poll: ", std::strerror(errno)));
      }
      continue;
    }
    return internal_error(cat("socket write: ", std::strerror(errno)));
  }
  return Status::ok();
}

StatusOr<Frame> read_frame(int fd, int stall_timeout_ms) {
  // One-shot decoder: only safe when the peer strictly alternates
  // request/reply (never two frames in flight on this stream).
  FrameDecoder decoder;
  return read_frame(fd, decoder, stall_timeout_ms);
}

StatusOr<Frame> read_frame(int fd, FrameDecoder& decoder,
                           int stall_timeout_ms) {
  if (fault::should_fail("serve.sock.read")) {
    return internal_error("fault injected: socket read failed");
  }
  std::uint8_t chunk[4096];
  while (true) {
    StatusOr<std::optional<Frame>> frame = decoder.next();
    if (!frame.is_ok()) return frame.status();
    if (frame.value().has_value()) return std::move(*frame.value());
    if (stall_timeout_ms >= 0) {
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, stall_timeout_ms);
      if (rc == 0) {
        return internal_error(cat("socket read stalled for ",
                                  stall_timeout_ms,
                                  " ms (peer not responding)"));
      }
      if (rc < 0 && errno != EINTR) {
        return internal_error(cat("socket poll: ", std::strerror(errno)));
      }
      if (rc < 0) continue;  // EINTR: re-poll
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return internal_error(cat("socket read: ", std::strerror(errno)));
    }
    if (n == 0) {
      if (decoder.buffered() == 0) {
        return failed_precondition("peer closed the connection");
      }
      return internal_error("peer disconnected mid-frame");
    }
    if (Status s = decoder.feed(chunk, static_cast<std::size_t>(n));
        !s.is_ok()) {
      return s;
    }
  }
}

// ---- typed messages -------------------------------------------------------

namespace {

Frame frame_of(MsgType type, Writer&& w) {
  Frame f;
  f.type = type;
  f.payload = std::move(w).take();
  return f;
}

Status expect_type(const Frame& frame, MsgType want, const char* what) {
  if (frame.type != want) {
    return invalid_argument(cat("expected ", what, " frame, got type ",
                                static_cast<int>(frame.type)));
  }
  return Status::ok();
}

Status expect_done(const Reader& r, const char* what) {
  if (!r.done()) {
    return invalid_argument(
        cat(r.remaining(), " trailing byte(s) after ", what, " payload"));
  }
  return Status::ok();
}

}  // namespace

Frame encode(const LoadProgramMsg& m) {
  Writer w;
  w.u8(m.builtin.empty() ? 1 : 0);
  w.str(m.builtin.empty() ? m.source : m.builtin);
  w.u8(m.config.target_tier);
  w.u8(m.config.policy);
  w.u8(m.config.portable ? 1 : 0);
  return frame_of(MsgType::kLoadProgram, std::move(w));
}

StatusOr<LoadProgramMsg> decode_load_program(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kLoadProgram, "load-program");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  LoadProgramMsg m;
  const StatusOr<std::uint8_t> kind = r.u8();
  if (!kind.is_ok()) return kind.status();
  StatusOr<std::string> text = r.str();
  if (!text.is_ok()) return text.status();
  if (kind.value() == 0) {
    m.builtin = std::move(text).value();
  } else if (kind.value() == 1) {
    m.source = std::move(text).value();
  } else {
    return invalid_argument(cat("unknown program kind ", kind.value()));
  }
  const StatusOr<std::uint8_t> tier = r.u8();
  if (!tier.is_ok()) return tier.status();
  if (tier.value() > 2) {
    return invalid_argument(cat("unknown target tier ", tier.value()));
  }
  m.config.target_tier = tier.value();
  const StatusOr<std::uint8_t> policy = r.u8();
  if (!policy.is_ok()) return policy.status();
  if (policy.value() > 3) {
    return invalid_argument(cat("unknown directive policy v", policy.value()));
  }
  m.config.policy = policy.value();
  const StatusOr<std::uint8_t> portable = r.u8();
  if (!portable.is_ok()) return portable.status();
  m.config.portable = portable.value() != 0;
  if (Status s = expect_done(r, "load-program"); !s.is_ok()) return s;
  return m;
}

Frame encode(const LoadReplyMsg& m) {
  Writer w;
  w.u64(m.session_id);
  w.u8(m.current_tier);
  w.str(m.program_hash);
  return frame_of(MsgType::kLoadReply, std::move(w));
}

StatusOr<LoadReplyMsg> decode_load_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kLoadReply, "load-reply");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  LoadReplyMsg m;
  const StatusOr<std::uint64_t> id = r.u64();
  if (!id.is_ok()) return id.status();
  m.session_id = id.value();
  const StatusOr<std::uint8_t> tier = r.u8();
  if (!tier.is_ok()) return tier.status();
  m.current_tier = tier.value();
  StatusOr<std::string> hash = r.str();
  if (!hash.is_ok()) return hash.status();
  m.program_hash = std::move(hash).value();
  if (Status s = expect_done(r, "load-reply"); !s.is_ok()) return s;
  return m;
}

Frame encode(const RunEntryMsg& m) {
  Writer w;
  w.u64(m.session_id);
  w.u32(m.deadline_ms);
  w.str(m.entry);
  w.u32(static_cast<std::uint32_t>(m.args.size()));
  for (const double a : m.args) w.f64(a);
  return frame_of(MsgType::kRunEntry, std::move(w));
}

StatusOr<RunEntryMsg> decode_run_entry(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kRunEntry, "run-entry");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  RunEntryMsg m;
  const StatusOr<std::uint64_t> id = r.u64();
  if (!id.is_ok()) return id.status();
  m.session_id = id.value();
  const StatusOr<std::uint32_t> deadline = r.u32();
  if (!deadline.is_ok()) return deadline.status();
  m.deadline_ms = deadline.value();
  StatusOr<std::string> entry = r.str();
  if (!entry.is_ok()) return entry.status();
  m.entry = std::move(entry).value();
  const StatusOr<std::uint32_t> n = r.u32();
  if (!n.is_ok()) return n.status();
  if (static_cast<std::size_t>(n.value()) * 8 > r.remaining()) {
    return invalid_argument(cat("argument count ", n.value(),
                                " exceeds payload"));
  }
  m.args.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    const StatusOr<double> a = r.f64();
    if (!a.is_ok()) return a.status();
    m.args.push_back(a.value());
  }
  if (Status s = expect_done(r, "run-entry"); !s.is_ok()) return s;
  return m;
}

Frame encode(const RunReplyMsg& m) {
  Writer w;
  w.u8(m.tier);
  w.f64(m.result);
  return frame_of(MsgType::kRunReply, std::move(w));
}

StatusOr<RunReplyMsg> decode_run_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kRunReply, "run-reply");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  RunReplyMsg m;
  const StatusOr<std::uint8_t> tier = r.u8();
  if (!tier.is_ok()) return tier.status();
  m.tier = tier.value();
  const StatusOr<double> result = r.f64();
  if (!result.is_ok()) return result.status();
  m.result = result.value();
  if (Status s = expect_done(r, "run-reply"); !s.is_ok()) return s;
  return m;
}

Frame encode(const RunBatchMsg& m) {
  Writer w;
  w.u64(m.session_id);
  w.u32(m.deadline_ms);
  w.str(m.entry);
  w.u32(m.count);
  w.u32(m.num_args);
  for (const double a : m.scalars) w.f64(a);
  return frame_of(MsgType::kRunBatch, std::move(w));
}

StatusOr<RunBatchMsg> decode_run_batch(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kRunBatch, "run-batch");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  RunBatchMsg m;
  const StatusOr<std::uint64_t> id = r.u64();
  if (!id.is_ok()) return id.status();
  m.session_id = id.value();
  const StatusOr<std::uint32_t> deadline = r.u32();
  if (!deadline.is_ok()) return deadline.status();
  m.deadline_ms = deadline.value();
  StatusOr<std::string> entry = r.str();
  if (!entry.is_ok()) return entry.status();
  m.entry = std::move(entry).value();
  const StatusOr<std::uint32_t> count = r.u32();
  if (!count.is_ok()) return count.status();
  const StatusOr<std::uint32_t> num_args = r.u32();
  if (!num_args.is_ok()) return num_args.status();
  m.count = count.value();
  m.num_args = num_args.value();
  // Bound count BEFORE forming count * num_args: unchecked, a crafted
  // pair can wrap the 64-bit product so that total * 8 == 0 "matches"
  // an empty payload while total itself is 2^61 — and the reserve()
  // below would then throw past every caller and kill the daemon. The
  // cap also covers num_args == 0 (legal: zero-argument entries), where
  // the payload says nothing about count and a 31-byte frame could
  // otherwise demand 2^32-1 server-side calls.
  if (m.count > kMaxBatchCount) {
    return invalid_argument(cat("batch count ", m.count, " exceeds limit ",
                                kMaxBatchCount,
                                " (reply must fit one frame)"));
  }
  // count <= kMaxBatchCount < 2^23, num_args < 2^32: total < 2^55 and
  // total * 8 < 2^58 — no wraparound is possible past the cap.
  const std::uint64_t total =
      std::uint64_t{m.count} * std::uint64_t{m.num_args};
  if (total * 8 != r.remaining()) {
    return invalid_argument(cat("batch of ", m.count, "x", m.num_args,
                                " scalars does not match payload size"));
  }
  m.scalars.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const StatusOr<double> a = r.f64();
    if (!a.is_ok()) return a.status();
    m.scalars.push_back(a.value());
  }
  if (Status s = expect_done(r, "run-batch"); !s.is_ok()) return s;
  return m;
}

Frame encode(const BatchReplyMsg& m) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (const RunReplyMsg& r : m.results) {
    w.u8(r.tier);
    w.f64(r.result);
  }
  return frame_of(MsgType::kBatchReply, std::move(w));
}

StatusOr<BatchReplyMsg> decode_batch_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kBatchReply, "batch-reply");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  BatchReplyMsg m;
  const StatusOr<std::uint32_t> n = r.u32();
  if (!n.is_ok()) return n.status();
  if (static_cast<std::size_t>(n.value()) * 9 > r.remaining()) {
    return invalid_argument(cat("result count ", n.value(),
                                " exceeds payload"));
  }
  m.results.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    RunReplyMsg item;
    const StatusOr<std::uint8_t> tier = r.u8();
    if (!tier.is_ok()) return tier.status();
    item.tier = tier.value();
    const StatusOr<double> result = r.f64();
    if (!result.is_ok()) return result.status();
    item.result = result.value();
    m.results.push_back(item);
  }
  if (Status s = expect_done(r, "batch-reply"); !s.is_ok()) return s;
  return m;
}

Frame encode(const StatsMsg& m) {
  Writer w;
  w.u64(m.session_id);
  return frame_of(MsgType::kStats, std::move(w));
}

StatusOr<StatsMsg> decode_stats(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kStats, "stats"); !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  StatsMsg m;
  const StatusOr<std::uint64_t> id = r.u64();
  if (!id.is_ok()) return id.status();
  m.session_id = id.value();
  if (Status s = expect_done(r, "stats"); !s.is_ok()) return s;
  return m;
}

Frame encode(const StatsReplyMsg& m) {
  Writer w;
  w.str(m.json);
  return frame_of(MsgType::kStatsReply, std::move(w));
}

StatusOr<StatsReplyMsg> decode_stats_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kStatsReply, "stats-reply");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  StatsReplyMsg m;
  StatusOr<std::string> json = r.str();
  if (!json.is_ok()) return json.status();
  m.json = std::move(json).value();
  if (Status s = expect_done(r, "stats-reply"); !s.is_ok()) return s;
  return m;
}

Frame encode(const HelloReplyMsg& m) {
  Writer w;
  w.u16(m.protocol_version);
  w.u64(m.server_pid);
  return frame_of(MsgType::kHelloOk, std::move(w));
}

StatusOr<HelloReplyMsg> decode_hello_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kHelloOk, "hello-ok");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  HelloReplyMsg m;
  const StatusOr<std::uint16_t> version = r.u16();
  if (!version.is_ok()) return version.status();
  m.protocol_version = version.value();
  const StatusOr<std::uint64_t> pid = r.u64();
  if (!pid.is_ok()) return pid.status();
  m.server_pid = pid.value();
  if (Status s = expect_done(r, "hello-ok"); !s.is_ok()) return s;
  return m;
}

Frame encode(const HealthReplyMsg& m) {
  Writer w;
  w.u8(m.ready);
  w.u8(m.draining);
  w.u8(m.top_tier);
  w.u32(m.sessions);
  w.u32(m.inflight);
  w.u32(m.queued);
  w.u32(m.compile_queued);
  w.u32(m.max_inflight);
  return frame_of(MsgType::kHealthReply, std::move(w));
}

StatusOr<HealthReplyMsg> decode_health_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kHealthReply, "health-reply");
      !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  HealthReplyMsg m;
  const StatusOr<std::uint8_t> ready = r.u8();
  if (!ready.is_ok()) return ready.status();
  m.ready = ready.value();
  const StatusOr<std::uint8_t> draining = r.u8();
  if (!draining.is_ok()) return draining.status();
  m.draining = draining.value();
  const StatusOr<std::uint8_t> top_tier = r.u8();
  if (!top_tier.is_ok()) return top_tier.status();
  m.top_tier = top_tier.value();
  for (std::uint32_t* field : {&m.sessions, &m.inflight, &m.queued,
                               &m.compile_queued, &m.max_inflight}) {
    const StatusOr<std::uint32_t> v = r.u32();
    if (!v.is_ok()) return v.status();
    *field = v.value();
  }
  if (Status s = expect_done(r, "health-reply"); !s.is_ok()) return s;
  return m;
}

Frame encode(const ErrorMsg& m) {
  Writer w;
  w.u32(m.code);
  w.str(m.message);
  return frame_of(MsgType::kError, std::move(w));
}

StatusOr<ErrorMsg> decode_error(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kError, "error"); !s.is_ok()) {
    return s;
  }
  Reader r(frame.payload);
  ErrorMsg m;
  const StatusOr<std::uint32_t> code = r.u32();
  if (!code.is_ok()) return code.status();
  m.code = code.value();
  StatusOr<std::string> message = r.str();
  if (!message.is_ok()) return message.status();
  m.message = std::move(message).value();
  if (Status s = expect_done(r, "error"); !s.is_ok()) return s;
  return m;
}

Frame error_frame(const Status& status) {
  ErrorMsg m;
  m.code = static_cast<std::uint32_t>(status.code());
  m.message = status.message();
  return encode(m);
}

}  // namespace glaf::serve
