#include "serve/batcher.hpp"

#include <algorithm>

namespace glaf::serve {

namespace {

/// Sweep-side result of one request (plain fields so ranks can fill a
/// preallocated vector; delivery reconstructs the StatusOr).
struct Outcome {
  Status status;
  double value = 0.0;
  Tier tier = Tier::kPlan;
  bool expired = false;
};

Outcome run_one(RunRequest& request) {
  Outcome out;
  if (request.has_deadline &&
      std::chrono::steady_clock::now() > request.deadline) {
    // Expired while queued: answer without leasing an instance — the
    // client has (or will) give up, so running the kernel is pure
    // waste that delays every live request behind it.
    out.status = deadline_exceeded("request deadline elapsed in queue");
    out.expired = true;
    return out;
  }
  StatusOr<Lease> lease = request.session->acquire();
  if (!lease.is_ok()) {
    out.status = lease.status();
    return out;
  }
  std::vector<CallArg> args;
  args.reserve(request.args.size());
  for (const double a : request.args) args.emplace_back(a);
  const StatusOr<double> result =
      lease.value().machine().call(request.entry, args);
  out.tier = lease.value().tier();
  request.session->record_run(out.tier);
  if (result.is_ok()) {
    out.value = result.value();
  } else {
    out.status = result.status();
  }
  return out;
}

void deliver(RunRequest& request, Outcome& outcome) {
  if (outcome.status.is_ok()) {
    request.done(StatusOr<double>(outcome.value), outcome.tier);
  } else {
    request.done(StatusOr<double>(std::move(outcome.status)), outcome.tier);
  }
}

}  // namespace

Batcher::Batcher(Options options)
    : options_(options), pool_(std::max(1, options.threads)),
      dispatcher_([this] { dispatcher_main(); }) {}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

void Batcher::submit(RunRequest request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
}

Batcher::Stats Batcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Batcher::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Batcher::dispatcher_main() {
  while (true) {
    std::vector<RunRequest> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;  // spurious wake
      }
      const std::size_t n = std::min(queue_.size(), options_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    run_batch(batch);
  }
}

void Batcher::run_batch(std::vector<RunRequest>& batch) {
  std::vector<Outcome> outcomes(batch.size());
  if (batch.size() == 1) {
    // A lone request pays no fork/join: inline on the dispatcher.
    outcomes[0] = run_one(batch[0]);
  } else {
    // The sweep: one fork/join over the whole batch. Each request
    // leases its own instance, so ranks never share mutable state.
    pool_.parallel_for(
        static_cast<std::int64_t>(batch.size()),
        [&](int /*rank*/, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            outcomes[static_cast<std::size_t>(i)] =
                run_one(batch[static_cast<std::size_t>(i)]);
          }
        });
  }
  // Count the batch BEFORE delivering: a client that observed its reply
  // must see its request in the stats endpoint.
  std::uint64_t expired = 0;
  for (const Outcome& out : outcomes) {
    if (out.expired) ++expired;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches;
    stats_.requests += batch.size();
    stats_.max_batch =
        std::max<std::uint64_t>(stats_.max_batch, batch.size());
    stats_.deadline_expired += expired;
  }
  // Deliver serially on the dispatcher so completion callbacks (and
  // their socket writes) never race each other. A stalled client can
  // hold this loop up at most once for the server's write timeout —
  // the write then fails, the connection is marked dead, and every
  // later reply to it drops without touching the socket.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    deliver(batch[i], outcomes[i]);
  }
}

}  // namespace glaf::serve
