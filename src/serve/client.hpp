#pragma once
// Synchronous client for the glaf-serve wire protocol. One connection,
// one outstanding request at a time — the library that backs both the
// QPS bench (which opens many of these) and `glaf_serve --client`.
//
// Every call sends one request frame and blocks for its reply; a typed
// kError reply surfaces as the contained Status, transport failures as
// the socket Status. The client is not thread-safe: one Client per
// thread (they are cheap — a connect(2) and a hello exchange).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "support/status.hpp"

namespace glaf::serve {

class Client {
 public:
  Client() = default;
  ~Client();  ///< closes the socket

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Connect to the daemon and exchange the hello handshake (which
  /// verifies magic + protocol version end to end).
  Status connect(const std::string& socket_path);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Daemon pid from the hello reply (0 before connect()).
  [[nodiscard]] std::uint64_t server_pid() const { return server_pid_; }

  /// Load a builtin program ("sarb", "fun3d") under `config`.
  StatusOr<LoadReplyMsg> load_builtin(const std::string& name,
                                      const ExecConfig& config = {});
  /// Load serialized GLAF IR text under `config`.
  StatusOr<LoadReplyMsg> load_source(const std::string& source,
                                     const ExecConfig& config = {});

  /// Run `entry` once; the reply carries the result and the tier that
  /// served it.
  StatusOr<RunReplyMsg> run(std::uint64_t session_id,
                            const std::string& entry,
                            const std::vector<double>& args = {});

  /// Run `entry` count times with args[i*num_args..] per call; one
  /// round trip, executed server-side as one batch.
  StatusOr<BatchReplyMsg> run_batch(std::uint64_t session_id,
                                    const std::string& entry,
                                    std::uint32_t count,
                                    std::uint32_t num_args,
                                    const std::vector<double>& scalars);

  /// Stats JSON for one session, or the whole server with id 0.
  StatusOr<std::string> stats(std::uint64_t session_id = 0);

  /// Ask the daemon to exit (waits for the kShutdownOk ack).
  Status shutdown_server();

  void close();

 private:
  /// One request/reply exchange; checks for a kError reply.
  StatusOr<Frame> round_trip(const Frame& request, MsgType expected_reply);

  int fd_ = -1;
  std::uint64_t server_pid_ = 0;
};

}  // namespace glaf::serve
