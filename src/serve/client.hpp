#pragma once
// Synchronous client for the glaf-serve wire protocol. One connection,
// one outstanding request at a time — the library that backs both the
// QPS bench (which opens many of these) and `glaf_serve --client`.
//
// Every call sends one request frame and blocks for its reply; a typed
// kError reply surfaces as the contained Status, transport failures as
// the socket Status. The client is not thread-safe: one Client per
// thread (they are cheap — a connect(2) and a hello exchange).
//
// Robustness: connect and read are both bounded (Options) so a wedged
// daemon — accepted the connection, never replies — costs a timeout,
// not a hang. With retries > 0 the client transparently survives
// transport faults: a failed write/read closes the (now mid-frame,
// unusable) socket, re-dials with exponential backoff + deterministic
// jitter, and resends. Only PURE requests ride this path — hello, load
// (idempotent by program hash), run/run_batch (kernels compute values),
// stats, health. kShutdown is never retried: a lost ack after a
// delivered shutdown must not kill the replacement daemon. A typed
// kBusy reply (overload, drain) is also retried after backoff, without
// reconnecting. All other typed errors surface immediately.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace glaf::serve {

class Client {
 public:
  struct Options {
    /// Max milliseconds for connect(2) to complete (0 = unbounded).
    int connect_timeout_ms = 10000;
    /// Max milliseconds a reply read may sit with zero bytes arriving
    /// before the request fails (0 = unbounded). Guards against a
    /// wedged daemon that accepted but will never answer.
    int read_timeout_ms = 30000;
    /// Automatic retries after a transport fault or kBusy (0 = off).
    int retries = 0;
    /// Base backoff before retry k is backoff << min(k, 5), plus up to
    /// 50% deterministic jitter.
    int retry_backoff_ms = 50;
    /// Seed for the jitter stream (deterministic tests/benches).
    std::uint64_t retry_seed = 1;
  };

  Client() = default;
  ~Client();  ///< closes the socket

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Connect to the daemon and exchange the hello handshake (which
  /// verifies magic + protocol version end to end). The path and
  /// options are remembered for automatic reconnects.
  Status connect(const std::string& socket_path, const Options& options);
  Status connect(const std::string& socket_path);  ///< default Options

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Daemon pid from the hello reply (0 before connect()).
  [[nodiscard]] std::uint64_t server_pid() const { return server_pid_; }

  /// Load a builtin program ("sarb", "fun3d") under `config`.
  StatusOr<LoadReplyMsg> load_builtin(const std::string& name,
                                      const ExecConfig& config = {});
  /// Load serialized GLAF IR text under `config`.
  StatusOr<LoadReplyMsg> load_source(const std::string& source,
                                     const ExecConfig& config = {});

  /// Run `entry` once; the reply carries the result and the tier that
  /// served it. deadline_ms > 0 asks the server to answer
  /// kDeadlineExceeded instead of running work it can no longer serve
  /// in time.
  StatusOr<RunReplyMsg> run(std::uint64_t session_id,
                            const std::string& entry,
                            const std::vector<double>& args = {},
                            std::uint32_t deadline_ms = 0);

  /// Run `entry` count times with args[i*num_args..] per call; one
  /// round trip, executed server-side as one batch. deadline_ms covers
  /// the whole batch.
  StatusOr<BatchReplyMsg> run_batch(std::uint64_t session_id,
                                    const std::string& entry,
                                    std::uint32_t count,
                                    std::uint32_t num_args,
                                    const std::vector<double>& scalars,
                                    std::uint32_t deadline_ms = 0);

  /// Stats JSON for one session, or the whole server with id 0.
  StatusOr<std::string> stats(std::uint64_t session_id = 0);

  /// Readiness probe (answered even while the server drains).
  StatusOr<HealthReplyMsg> health();

  /// Ask the daemon to exit (waits for the kShutdownOk ack). Never
  /// retried — see the header comment.
  Status shutdown_server();

  void close();

 private:
  /// Dial + hello handshake (no retries; exchange() owns those).
  Status dial();
  /// One request/reply exchange; checks for a kError reply. A
  /// transport failure closes the socket and sets transport_failed_.
  StatusOr<Frame> round_trip(const Frame& request, MsgType expected_reply);
  /// round_trip plus the reconnect/backoff/retry loop for pure
  /// requests.
  StatusOr<Frame> exchange(const Frame& request, MsgType expected_reply);
  void backoff(int attempt);

  Options options_;
  std::string socket_path_;
  SplitMix64 jitter_{1};
  int fd_ = -1;
  std::uint64_t server_pid_ = 0;
  bool transport_failed_ = false;
};

}  // namespace glaf::serve
