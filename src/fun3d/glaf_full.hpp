#pragma once
// The COMPLETE FUN3D Jacobian-reconstruction decomposition in the GLAF
// IR — exactly the five sub-functions of paper §4.2:
//
//   EdgeJP       "the outermost scope, which initializes critical
//                 module-wide constants and loops over cells"
//   cell_loop    "the computation required within a cell ... interior
//                 loops over nodes, faces, and edges"
//   edge_loop    the innermost edge computation (50 temporaries, SAVE'd)
//   angle_check  "a check for a cell-face angle in excess of some
//                 threshold (which results in skipping the rest of the
//                 cell's contribution)"
//   ioff_search  "a search for the offset at which a node's contribution
//                 should be recorded in the final output data structure"
//
// plus face_weight, the interior-loop-as-function §3.3 requires for the
// per-face distance loop. The formulas mirror fun3d/recon.cpp operation
// for operation, so serial interpretation reproduces the native
// mini-app's output bit for bit — the §4.2.1 integration check done
// through the framework itself.
//
// Sizes are baked from a concrete mesh at build time (grids are sized to
// that dataset, as a GPI user would size them for theirs).

#include "core/program.hpp"
#include "fun3d/mesh.hpp"
#include "interp/machine.hpp"

namespace glaf::fun3d {

/// Build the full decomposition for `mesh`'s dimensions.
Program build_fun3d_full_program(const Mesh& mesh);

/// Copy the mesh arrays into the machine's globals (the legacy FUN3D
/// modules' data).
Status load_mesh(Machine& machine, const Mesh& mesh);

/// Read the accumulated Jacobian out of the machine.
StatusOr<std::vector<double>> extract_jacobian(const Machine& machine);

}  // namespace glaf::fun3d
