#pragma once
// Synthetic unstructured mesh for the FUN3D Jacobian-reconstruction
// case study.
//
// SUBSTITUTION NOTE (see DESIGN.md): NASA's FUN3D sources and the 1M-cell
// test dataset are unavailable. This mesh generator produces a structure
// with the properties the paper relies on: tetrahedral-style cells with 4
// nodes and 4 faces, roughly 10 edge visits per cell (1M cells -> 10M
// edges), a CSR node-adjacency used by the offset search, and a
// per-node solution vector of 5 conserved quantities.

#include <cstdint>
#include <vector>

namespace glaf::fun3d {

/// Number of conserved quantities per node (density, 3 momentum, energy).
inline constexpr int kNumEq = 5;
/// Nodes and faces per (tet-style) cell.
inline constexpr int kNodesPerCell = 4;
inline constexpr int kFacesPerCell = 4;

/// The local MPI rank's domain, as the paper frames it.
struct Mesh {
  std::int64_t n_nodes = 0;
  std::int64_t n_cells = 0;
  std::int64_t n_edges = 0;  ///< total directed edge visits (~10 per cell)

  std::vector<std::int32_t> cell_nodes;  ///< [n_cells * kNodesPerCell]
  std::vector<std::int32_t> cell_edge_ptr;  ///< [n_cells + 1] into edge arrays
  std::vector<std::int32_t> edge_a;      ///< [n_edges] first endpoint node
  std::vector<std::int32_t> edge_b;      ///< [n_edges] second endpoint node

  std::vector<double> coords;  ///< [n_nodes * 3]
  std::vector<double> q;       ///< [n_nodes * kNumEq] solution vector

  /// CSR node adjacency (sorted) for the ioff_search offset lookup.
  std::vector<std::int32_t> row_ptr;  ///< [n_nodes + 1]
  std::vector<std::int32_t> col_idx;  ///< [row_ptr[n_nodes]]

  [[nodiscard]] std::int64_t edges_of_cell_begin(std::int64_t c) const {
    return cell_edge_ptr[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::int64_t edges_of_cell_end(std::int64_t c) const {
    return cell_edge_ptr[static_cast<std::size_t>(c) + 1];
  }
};

/// Deterministically build a mesh with `n_cells` cells. Nodes ~ cells/5,
/// edge visits ~ 10 per cell (8..12), CSR adjacency from the edges.
Mesh make_mesh(std::int64_t n_cells, std::uint64_t seed);

}  // namespace glaf::fun3d
