#include "fun3d/glaf_full.hpp"

#include <stdexcept>

#include "core/builder.hpp"
#include "fun3d/recon.hpp"

namespace glaf::fun3d {
namespace {

/// Handles shared across the sub-function builders.
struct FullGrids {
  GridHandle n_cells, n_nodes;
  GridHandle cell_nodes, coords, q, cell_edge_ptr, edge_a, edge_b;
  GridHandle row_ptr, col_idx;
  GridHandle jac;
  GridHandle cell_avg, dq, contrib, wgt_total;  // module-scope (§3.3)
};

FullGrids declare(ProgramBuilder& pb, const Mesh& mesh) {
  FullGrids g;
  g.n_cells = pb.global("n_cells", DataType::kInt, {},
                        {.init = {mesh.n_cells}});
  g.n_nodes = pb.global("n_nodes", DataType::kInt, {},
                        {.init = {mesh.n_nodes}});

  const GridOpts ext{.from_module = "fun3d_grid"};
  g.cell_nodes = pb.global("cell_nodes", DataType::kInt,
                           {liti(mesh.n_cells), liti(kNodesPerCell)}, ext);
  g.coords = pb.global("coords", DataType::kDouble,
                       {liti(mesh.n_nodes), 3}, ext);
  g.q = pb.global("q", DataType::kDouble,
                  {liti(mesh.n_nodes), liti(kNumEq)}, ext);
  g.cell_edge_ptr = pb.global("cell_edge_ptr", DataType::kInt,
                              {liti(mesh.n_cells + 1)}, ext);
  g.edge_a = pb.global("edge_a", DataType::kInt, {liti(mesh.n_edges)}, ext);
  g.edge_b = pb.global("edge_b", DataType::kInt, {liti(mesh.n_edges)}, ext);
  g.row_ptr = pb.global("row_ptr", DataType::kInt,
                        {liti(mesh.n_nodes + 1)}, ext);
  g.col_idx = pb.global("col_idx", DataType::kInt,
                        {liti(static_cast<std::int64_t>(mesh.col_idx.size()))},
                        ext);

  const GridOpts mscope{.module_scope = true};
  g.jac = pb.global("jac", DataType::kDouble,
                    {liti(mesh.n_nodes), liti(kNumEq)}, mscope);
  // Interior loops return complex data to outer scopes through
  // module-scope variables — the exact §3.3 motivation.
  g.cell_avg = pb.global("cell_avg", DataType::kDouble, {liti(kNumEq)},
                         mscope);
  g.dq = pb.global("dq", DataType::kDouble, {liti(kNumEq)}, mscope);
  g.contrib = pb.global("contrib", DataType::kDouble, {liti(kNumEq)}, mscope);
  g.wgt_total = pb.global("wgt_total", DataType::kDouble, {}, mscope);
  return g;
}

void build_angle_check(ProgramBuilder& pb, const FullGrids& g) {
  auto fb = pb.function("angle_check", DataType::kInt);
  fb.comment("Cell-face angle check; 1 = skip this cell (paper 4.2)");
  auto c = fb.param("c", DataType::kInt);
  auto an = fb.local("an", DataType::kInt);
  auto bn = fb.local("bn", DataType::kInt);
  auto cn = fb.local("cn", DataType::kInt);
  auto dot = fb.local("dotv", DataType::kDouble);
  auto na = fb.local("na", DataType::kDouble);
  auto nb = fb.local("nb", DataType::kDouble);
  auto u = fb.local("u", DataType::kDouble);
  auto v = fb.local("v", DataType::kDouble);
  auto denom = fb.local("denom", DataType::kDouble);
  const E d = idx("d");

  auto s0 = fb.step("ac0");
  s0.assign(an(), g.cell_nodes(E(c), liti(0)));
  s0.assign(bn(), g.cell_nodes(E(c), liti(1)));
  s0.assign(cn(), g.cell_nodes(E(c), liti(2)));
  s0.assign(dot(), 0.0);
  s0.assign(na(), 0.0);
  s0.assign(nb(), 0.0);

  auto s1 = fb.step("ac1");
  s1.foreach_("d", 0, 2);
  s1.assign(u(), g.coords(E(bn), d) - g.coords(E(an), d));
  s1.assign(v(), g.coords(E(cn), d) - g.coords(E(an), d));
  s1.assign(dot(), E(dot) + E(u) * E(v));
  s1.assign(na(), E(na) + E(u) * E(u));
  s1.assign(nb(), E(nb) + E(v) * E(v));

  auto s2 = fb.step("ac2");
  s2.assign(denom(), call("SQRT", {E(na) * E(nb)}));
  s2.if_(E(denom) == 0.0, [&](BodyBuilder& b) { b.ret(liti(1)); });
  s2.if_(call("ABS", {E(dot)}) / E(denom) > 0.97,
         [&](BodyBuilder& b) { b.ret(liti(1)); });
  s2.ret(liti(0));
}

void build_face_weight(ProgramBuilder& pb, const FullGrids& g) {
  auto fb = pb.function("face_weight", DataType::kDouble);
  fb.comment("Per-face geometric weight (interior loop as function, 3.3)");
  auto c = fb.param("c", DataType::kInt);
  auto f = fb.param("f", DataType::kInt);
  auto an = fb.local("an", DataType::kInt);
  auto bn = fb.local("bn", DataType::kInt);
  auto cn = fb.local("cn", DataType::kInt);
  auto w = fb.local("w", DataType::kDouble);
  auto ab = fb.local("ab", DataType::kDouble);
  auto ac = fb.local("ac", DataType::kDouble);
  const E d = idx("d");

  auto s0 = fb.step("fw0");
  s0.assign(an(), g.cell_nodes(E(c), E(f)));
  s0.assign(bn(), g.cell_nodes(E(c), mod(E(f) + 1, liti(kNodesPerCell))));
  s0.assign(cn(), g.cell_nodes(E(c), mod(E(f) + 2, liti(kNodesPerCell))));
  s0.assign(w(), 0.0);

  auto s1 = fb.step("fw1");
  s1.foreach_("d", 0, 2);
  s1.assign(ab(), g.coords(E(bn), d) - g.coords(E(an), d));
  s1.assign(ac(), g.coords(E(cn), d) - g.coords(E(an), d));
  s1.assign(w(), E(w) + call("ABS", {E(ab) - E(ac)}));

  auto s2 = fb.step("fw2");
  s2.ret(0.25 + E(w));
}

void build_ioff_search(ProgramBuilder& pb, const FullGrids& g) {
  auto fb = pb.function("ioff_search", DataType::kInt);
  fb.comment("Offset of `target` in node `row`'s CSR row (early return)");
  auto row = fb.param("row", DataType::kInt);
  auto target = fb.param("target", DataType::kInt);
  const E i = idx("i");
  auto s = fb.step("scan");
  s.foreach_("i", E(g.row_ptr(E(row))), E(g.row_ptr(E(row) + 1)) - 1);
  s.if_(g.col_idx(i) == E(target),
        [&](BodyBuilder& b) { b.ret(i - g.row_ptr(E(row))); });
  auto s2 = fb.step("miss");
  s2.ret(liti(-1));
}

void build_edge_loop(ProgramBuilder& pb, const FullGrids& g) {
  auto fb = pb.function("edge_loop");
  fb.comment("Innermost edge computation: 50 SAVE'd temporaries (4.2.1)");
  auto e = fb.param("e", DataType::kInt);
  auto an = fb.local("an", DataType::kInt);
  auto bn = fb.local("bn", DataType::kInt);
  auto ioff = fb.local("ioff", DataType::kInt);
  auto scale = fb.local("scale", DataType::kDouble);
  auto delta = fb.local("delta", DataType::kDouble);
  // The paper's 50 dynamically-(re)allocated temporary arrays, SAVE'd.
  auto temps = fb.local("temps", DataType::kDouble,
                        {liti(kEdgeTemps), liti(kNumEq)}, {.save = true});
  const E eq = idx("eq");
  const E t = idx("t");

  auto s0 = fb.step("el0");
  s0.assign(an(), g.edge_a(E(e)));
  s0.assign(bn(), g.edge_b(E(e)));

  auto s1 = fb.step("el1");
  s1.foreach_("eq", 0, kNumEq - 1);
  s1.assign(g.dq(eq), g.q(E(bn), eq) - g.q(E(an), eq));

  auto s2 = fb.step("el2");
  s2.foreach_("t", 0, kEdgeTemps - 1).foreach_("eq", 0, kNumEq - 1);
  s2.assign(temps(t, eq), g.dq(eq) / (t + 1));

  auto s3 = fb.step("el3");
  s3.foreach_("eq", 0, kNumEq - 1);
  s3.assign(g.contrib(eq), 0.0);

  auto s4 = fb.step("el4");
  s4.foreach_("t", 0, kEdgeTemps - 1).foreach_("eq", 0, kNumEq - 1);
  s4.assign(g.contrib(eq), g.contrib(eq) + temps(t, eq));

  auto s5 = fb.step("el5");
  s5.assign(ioff(), call("ioff_search", {E(an), E(bn)}));
  s5.assign(scale(), E(g.wgt_total) * (1.0 + 0.001 * E(ioff)) * 0.05);

  auto s6 = fb.step("el6");
  s6.foreach_("eq", 0, kNumEq - 1);
  s6.assign(delta(), (g.contrib(eq) - 0.1 * g.cell_avg(eq)) * E(scale));
  s6.assign(g.jac(E(an), eq), g.jac(E(an), eq) + E(delta));
  s6.assign(g.jac(E(bn), eq), g.jac(E(bn), eq) - E(delta));
}

void build_cell_loop(ProgramBuilder& pb, const FullGrids& g) {
  auto fb = pb.function("cell_loop");
  fb.comment("Per-cell computation: node loop, face loop, edge loop");
  auto c = fb.param("c", DataType::kInt);
  auto skip = fb.local("skip", DataType::kInt);
  const E n = idx("n");
  const E eq = idx("eq");
  const E f = idx("f");
  const E e = idx("e");

  auto s0 = fb.step("cl0");
  s0.assign(skip(), call("angle_check", {E(c)}));
  s0.if_(E(skip) == 1, [&](BodyBuilder& b) { b.ret(); });

  auto s1 = fb.step("cl1");
  s1.foreach_("eq", 0, kNumEq - 1);
  s1.assign(g.cell_avg(eq), 0.0);

  auto s2 = fb.step("cl2");
  s2.comment("node loop");
  s2.foreach_("n", 0, kNodesPerCell - 1).foreach_("eq", 0, kNumEq - 1);
  s2.assign(g.cell_avg(eq),
            g.cell_avg(eq) + g.q(g.cell_nodes(E(c), n), eq) * 0.25);

  auto s3 = fb.step("cl3");
  s3.assign(g.wgt_total(), 0.0);

  auto s4 = fb.step("cl4");
  s4.comment("face loop");
  s4.foreach_("f", 0, kFacesPerCell - 1);
  s4.assign(g.wgt_total(), E(g.wgt_total) + call("face_weight", {E(c), f}));

  auto s5 = fb.step("cl5");
  s5.comment("edge loop (count varies per cell)");
  s5.foreach_("e", E(g.cell_edge_ptr(E(c))),
              E(g.cell_edge_ptr(E(c) + 1)) - 1);
  s5.call_sub("edge_loop", {e});
}

void build_edgejp(ProgramBuilder& pb, const FullGrids& g) {
  auto fb = pb.function("edgejp");
  fb.comment("Outermost scope: init module-wide state, loop over cells");
  const E n = idx("n");
  const E eq = idx("eq");
  const E c = idx("c");

  auto s0 = fb.step("ej0");
  s0.comment("zero the Jacobian accumulator");
  s0.foreach_("n", 0, E(g.n_nodes) - 1).foreach_("eq", 0, kNumEq - 1);
  s0.assign(g.jac(n, eq), 0.0);

  auto s1 = fb.step("ej1");
  s1.comment("loop over all cells of the local domain");
  s1.foreach_("c", 0, E(g.n_cells) - 1);
  s1.call_sub("cell_loop", {c});
}

}  // namespace

Program build_fun3d_full_program(const Mesh& mesh) {
  ProgramBuilder pb("fun3d_recon");
  const FullGrids g = declare(pb, mesh);
  build_angle_check(pb, g);
  build_face_weight(pb, g);
  build_ioff_search(pb, g);
  build_edge_loop(pb, g);
  build_cell_loop(pb, g);
  build_edgejp(pb, g);
  auto result = pb.build();
  if (!result.is_ok()) {
    throw std::runtime_error("FUN3D full program failed validation: " +
                             result.status().message());
  }
  return std::move(result).value();
}

namespace {

std::vector<double> widen(const std::vector<std::int32_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

Status load_mesh(Machine& machine, const Mesh& mesh) {
  if (Status s = machine.set_array("cell_nodes", widen(mesh.cell_nodes));
      !s) {
    return s;
  }
  if (Status s = machine.set_array("coords", mesh.coords); !s) return s;
  if (Status s = machine.set_array("q", mesh.q); !s) return s;
  if (Status s = machine.set_array("cell_edge_ptr", widen(mesh.cell_edge_ptr));
      !s) {
    return s;
  }
  if (Status s = machine.set_array("edge_a", widen(mesh.edge_a)); !s) return s;
  if (Status s = machine.set_array("edge_b", widen(mesh.edge_b)); !s) return s;
  if (Status s = machine.set_array("row_ptr", widen(mesh.row_ptr)); !s) {
    return s;
  }
  return machine.set_array("col_idx", widen(mesh.col_idx));
}

StatusOr<std::vector<double>> extract_jacobian(const Machine& machine) {
  return machine.array("jac");
}

}  // namespace glaf::fun3d
