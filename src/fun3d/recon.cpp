#include "fun3d/recon.hpp"

#include <atomic>
#include <cmath>
#include <mutex>

#include "runtime/thread_pool.hpp"

namespace glaf::fun3d {
namespace {

constexpr double kAngleThreshold = 0.97;
constexpr double kAvgCoupling = 0.1;
constexpr double kScaleBase = 0.05;

inline std::size_t qat(std::int64_t node, int eq) {
  return static_cast<std::size_t>(node) * kNumEq + static_cast<std::size_t>(eq);
}

/// Per-cell quantities produced by the node and face loops.
struct CellContext {
  double cell_avg[kNumEq] = {};
  double wgt_total = 0.0;
};

/// Accumulate `delta` into jac[index]; atomically when another thread may
/// also write (shared output array under cell-level parallelism).
inline void accumulate(std::vector<double>& jac, std::size_t index,
                       double delta, bool atomic) {
  if (atomic) {
    std::atomic_ref<double> cell(jac[index]);
    cell.fetch_add(delta, std::memory_order_relaxed);
  } else {
    jac[index] += delta;
  }
}

double face_weight(const Mesh& mesh, std::int64_t cell, int face) {
  // Weight from the coordinates of the face's three nodes (faces of a tet
  // are the node triples skipping one vertex).
  const auto node = [&](int local) {
    return mesh.cell_nodes[static_cast<std::size_t>(cell) * kNodesPerCell +
                           static_cast<std::size_t>(local)];
  };
  const std::int32_t a = node(face);
  const std::int32_t b = node((face + 1) % kNodesPerCell);
  const std::int32_t c = node((face + 2) % kNodesPerCell);
  double w = 0.0;
  for (int d = 0; d < 3; ++d) {
    const double ab = mesh.coords[static_cast<std::size_t>(b) * 3 + d] -
                      mesh.coords[static_cast<std::size_t>(a) * 3 + d];
    const double ac = mesh.coords[static_cast<std::size_t>(c) * 3 + d] -
                      mesh.coords[static_cast<std::size_t>(a) * 3 + d];
    w += std::fabs(ab - ac);
  }
  return 0.25 + w;
}

/// The shared edge computation: identical operation order in every
/// implementation so that outputs agree (only the allocation strategy and
/// the accumulation atomicity differ).
template <typename TempsProvider>
void edge_contribution(const Mesh& mesh, std::int64_t edge,
                       const CellContext& ctx, std::vector<double>& jac,
                       bool atomic, TempsProvider&& temps_provider,
                       ReconStats& stats) {
  const std::int32_t a = mesh.edge_a[static_cast<std::size_t>(edge)];
  const std::int32_t b = mesh.edge_b[static_cast<std::size_t>(edge)];

  double dq[kNumEq];
  for (int eq = 0; eq < kNumEq; ++eq) {
    dq[eq] = mesh.q[qat(b, eq)] - mesh.q[qat(a, eq)];
  }

  // The 50 temporary arrays of §4.2.2. temps_provider returns a buffer of
  // kEdgeTemps * kNumEq doubles (freshly allocated or SAVE'd/private).
  double* temps = temps_provider();
  for (int t = 0; t < kEdgeTemps; ++t) {
    for (int eq = 0; eq < kNumEq; ++eq) {
      temps[t * kNumEq + eq] = dq[eq] / (t + 1);
    }
  }
  double contrib[kNumEq] = {};
  for (int t = 0; t < kEdgeTemps; ++t) {
    for (int eq = 0; eq < kNumEq; ++eq) {
      contrib[eq] += temps[t * kNumEq + eq];
    }
  }

  const std::int64_t ioff = ioff_search(mesh, a, b);
  ++stats.searches;
  const double scale =
      ctx.wgt_total * (1.0 + 0.001 * static_cast<double>(ioff)) * kScaleBase;
  for (int eq = 0; eq < kNumEq; ++eq) {
    const double delta = (contrib[eq] - kAvgCoupling * ctx.cell_avg[eq]) * scale;
    accumulate(jac, qat(a, eq), delta, atomic);
    accumulate(jac, qat(b, eq), -delta, atomic);
  }
}

CellContext build_cell_context(const Mesh& mesh, std::int64_t cell) {
  CellContext ctx;
  // Node loop.
  for (int n = 0; n < kNodesPerCell; ++n) {
    const std::int32_t node =
        mesh.cell_nodes[static_cast<std::size_t>(cell) * kNodesPerCell +
                        static_cast<std::size_t>(n)];
    for (int eq = 0; eq < kNumEq; ++eq) {
      ctx.cell_avg[eq] += mesh.q[qat(node, eq)] * 0.25;
    }
  }
  // Face loop.
  for (int f = 0; f < kFacesPerCell; ++f) {
    ctx.wgt_total += face_weight(mesh, cell, f);
  }
  return ctx;
}

/// Freshly-allocated temporaries: the reallocation cost the paper
/// eliminates with SAVE attributes.
struct ReallocTemps {
  ReconStats* stats;
  std::vector<double> storage;
  double* operator()() {
    storage.assign(static_cast<std::size_t>(kEdgeTemps) * kNumEq, 0.0);
    stats->allocations += kEdgeTemps;
    return storage.data();
  }
};

/// SAVE'd temporaries: allocated once per thread, reused across calls.
struct SavedTemps {
  ReconStats* stats;
  double* operator()() {
    thread_local std::vector<double> storage;
    if (storage.empty()) {
      storage.resize(static_cast<std::size_t>(kEdgeTemps) * kNumEq, 0.0);
      stats->allocations += kEdgeTemps;
    }
    return storage.data();
  }
};

}  // namespace

std::int64_t ioff_search(const Mesh& mesh, std::int32_t row,
                         std::int32_t target) {
  // Early-return linear scan of the CSR row (the paper wraps the parallel
  // version's early-return section in OMP CRITICAL).
  for (std::int32_t i = mesh.row_ptr[static_cast<std::size_t>(row)];
       i < mesh.row_ptr[static_cast<std::size_t>(row) + 1]; ++i) {
    if (mesh.col_idx[static_cast<std::size_t>(i)] == target) {
      return i - mesh.row_ptr[static_cast<std::size_t>(row)];
    }
  }
  return -1;
}

bool angle_check(const Mesh& mesh, std::int64_t cell) {
  // Cosine-like metric of the first face; values beyond the threshold
  // indicate a degenerate cell whose contribution is skipped.
  const std::int32_t a =
      mesh.cell_nodes[static_cast<std::size_t>(cell) * kNodesPerCell];
  const std::int32_t b =
      mesh.cell_nodes[static_cast<std::size_t>(cell) * kNodesPerCell + 1];
  const std::int32_t c =
      mesh.cell_nodes[static_cast<std::size_t>(cell) * kNodesPerCell + 2];
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (int d = 0; d < 3; ++d) {
    const double u = mesh.coords[static_cast<std::size_t>(b) * 3 + d] -
                     mesh.coords[static_cast<std::size_t>(a) * 3 + d];
    const double v = mesh.coords[static_cast<std::size_t>(c) * 3 + d] -
                     mesh.coords[static_cast<std::size_t>(a) * 3 + d];
    dot += u * v;
    na += u * u;
    nb += v * v;
  }
  const double denom = std::sqrt(na * nb);
  if (denom == 0.0) return true;
  return std::fabs(dot) / denom > kAngleThreshold;
}

// ---- original serial ---------------------------------------------------

ReconResult reconstruct_original(const Mesh& mesh) {
  ReconResult result;
  result.jac.assign(static_cast<std::size_t>(mesh.n_nodes) * kNumEq, 0.0);
  // One function, several levels of loop nesting, stack temporaries.
  std::vector<double> temps(static_cast<std::size_t>(kEdgeTemps) * kNumEq);
  for (std::int64_t c = 0; c < mesh.n_cells; ++c) {
    if (angle_check(mesh, c)) {
      ++result.stats.cells_skipped;
      continue;
    }
    const CellContext ctx = build_cell_context(mesh, c);
    for (std::int64_t e = mesh.edges_of_cell_begin(c);
         e < mesh.edges_of_cell_end(c); ++e) {
      ++result.stats.edge_calls;
      edge_contribution(mesh, e, ctx, result.jac, /*atomic=*/false,
                        [&] { return temps.data(); }, result.stats);
    }
  }
  return result;
}

// ---- GLAF decomposition --------------------------------------------------

namespace {

/// Executes the GLAF-decomposed reconstruction for one range of cells.
/// `nested` is true when already inside the outer parallel region, in
/// which case inner "parallel" loops execute serially but their fork/join
/// cost is still charged (our pool does not nest; OpenMP would fork).
void glaf_cells(const Mesh& mesh, const ReconOptions& opt, std::int64_t begin,
                std::int64_t end, bool nested, bool atomic,
                std::vector<double>& jac, ThreadPool* inner_pool,
                ReconStats& stats) {
  for (std::int64_t c = begin; c < end; ++c) {
    // angle_check sub-function.
    if (angle_check(mesh, c)) {
      ++stats.cells_skipped;
      continue;
    }

    // cell_loop sub-function: node loop and face loop, optionally
    // parallel ("the node and face loops are parallelized within
    // cell_loop").
    CellContext ctx;
    if (opt.par_cell_loop) {
      stats.fork_joins += 2;  // one region per loop
      if (!nested && inner_pool != nullptr) {
        std::mutex merge;
        inner_pool->parallel_for(
            kNodesPerCell, [&](int, std::int64_t nb, std::int64_t ne) {
              double local[kNumEq] = {};
              for (std::int64_t n = nb; n < ne; ++n) {
                const std::int32_t node = mesh.cell_nodes
                    [static_cast<std::size_t>(c) * kNodesPerCell +
                     static_cast<std::size_t>(n)];
                for (int eq = 0; eq < kNumEq; ++eq) {
                  local[eq] += mesh.q[qat(node, eq)] * 0.25;
                }
              }
              const std::lock_guard<std::mutex> lock(merge);
              for (int eq = 0; eq < kNumEq; ++eq) ctx.cell_avg[eq] += local[eq];
            });
        inner_pool->parallel_for(
            kFacesPerCell, [&](int, std::int64_t fb, std::int64_t fe) {
              double local = 0.0;
              for (std::int64_t f = fb; f < fe; ++f) {
                local += face_weight(mesh, c, static_cast<int>(f));
              }
              const std::lock_guard<std::mutex> lock(merge);
              ctx.wgt_total += local;
            });
      } else {
        ctx = build_cell_context(mesh, c);
      }
    } else {
      ctx = build_cell_context(mesh, c);
    }

    // edge_loop sub-function, optionally parallel across the cell's edges.
    const std::int64_t edge_begin = mesh.edges_of_cell_begin(c);
    const std::int64_t edge_count = mesh.edges_of_cell_end(c) - edge_begin;
    const auto run_edges = [&](std::int64_t eb, std::int64_t ee,
                               ReconStats& local_stats) {
      for (std::int64_t e = eb; e < ee; ++e) {
        ++local_stats.edge_calls;
        if (opt.par_ioff_search) {
          // One fork/join per offset search, plus the critical section.
          ++local_stats.fork_joins;
        }
        if (opt.no_realloc) {
          edge_contribution(mesh, edge_begin + e, ctx, jac, atomic,
                            SavedTemps{&local_stats}, local_stats);
        } else {
          edge_contribution(mesh, edge_begin + e, ctx, jac, atomic,
                            ReallocTemps{&local_stats, {}}, local_stats);
        }
      }
    };
    if (opt.par_edge_loop) {
      ++stats.fork_joins;
      if (!nested && inner_pool != nullptr) {
        std::mutex merge;
        inner_pool->parallel_for(
            edge_count, [&](int, std::int64_t eb, std::int64_t ee) {
              ReconStats local;
              run_edges(eb, ee, local);
              const std::lock_guard<std::mutex> lock(merge);
              stats.allocations += local.allocations;
              stats.fork_joins += local.fork_joins;
              stats.edge_calls += local.edge_calls;
              stats.searches += local.searches;
            });
      } else {
        run_edges(0, edge_count, stats);
      }
    } else {
      run_edges(0, edge_count, stats);
    }
  }
}

}  // namespace

ReconResult reconstruct_glaf(const Mesh& mesh, const ReconOptions& options) {
  ReconResult result;
  result.jac.assign(static_cast<std::size_t>(mesh.n_nodes) * kNumEq, 0.0);
  const bool any_parallel = options.par_edgejp || options.par_cell_loop ||
                            options.par_edge_loop;
  // Output accumulation must be atomic whenever cells can race (outer
  // parallelism) or edges race within a cell (edge parallelism).
  const bool atomic = options.par_edgejp || options.par_edge_loop;

  ThreadPool pool(any_parallel ? options.threads : 1);

  if (options.par_edgejp) {
    ++result.stats.fork_joins;  // the single outer region (EdgeJP)
    std::mutex merge;
    pool.parallel_for(
        mesh.n_cells, [&](int, std::int64_t begin, std::int64_t end) {
          ReconStats local;
          glaf_cells(mesh, options, begin, end, /*nested=*/true, atomic,
                     result.jac, nullptr, local);
          const std::lock_guard<std::mutex> lock(merge);
          result.stats.allocations += local.allocations;
          result.stats.fork_joins += local.fork_joins;
          result.stats.edge_calls += local.edge_calls;
          result.stats.searches += local.searches;
          result.stats.cells_skipped += local.cells_skipped;
        });
  } else {
    glaf_cells(mesh, options, 0, mesh.n_cells, /*nested=*/false, atomic,
               result.jac, any_parallel ? &pool : nullptr, result.stats);
  }
  return result;
}

// ---- manual parallel ------------------------------------------------------

ReconResult reconstruct_manual(const Mesh& mesh, int threads) {
  ReconResult result;
  result.jac.assign(static_cast<std::size_t>(mesh.n_nodes) * kNumEq, 0.0);
  ThreadPool pool(threads);
  std::mutex merge;
  ++result.stats.fork_joins;
  pool.parallel_for(
      mesh.n_cells, [&](int, std::int64_t begin, std::int64_t end) {
        // Thread-private output and temporaries (the 219 PRIVATE variables
        // of §4.2.2, in spirit): no atomics, one merge at the end.
        std::vector<double> private_jac(
            static_cast<std::size_t>(mesh.n_nodes) * kNumEq, 0.0);
        std::vector<double> temps(
            static_cast<std::size_t>(kEdgeTemps) * kNumEq);
        ReconStats local;
        for (std::int64_t c = begin; c < end; ++c) {
          if (angle_check(mesh, c)) {
            ++local.cells_skipped;
            continue;
          }
          const CellContext ctx = build_cell_context(mesh, c);
          for (std::int64_t e = mesh.edges_of_cell_begin(c);
               e < mesh.edges_of_cell_end(c); ++e) {
            ++local.edge_calls;
            edge_contribution(mesh, e, ctx, private_jac, /*atomic=*/false,
                              [&] { return temps.data(); }, local);
          }
        }
        const std::lock_guard<std::mutex> lock(merge);
        for (std::size_t i = 0; i < result.jac.size(); ++i) {
          result.jac[i] += private_jac[i];
        }
        result.stats.allocations += local.allocations;
        result.stats.edge_calls += local.edge_calls;
        result.stats.searches += local.searches;
        result.stats.cells_skipped += local.cells_skipped;
      });
  return result;
}

double rms_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v * v;
  return std::sqrt(sum / static_cast<double>(values.size()));
}

}  // namespace glaf::fun3d
