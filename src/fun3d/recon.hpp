#pragma once
// The FUN3D Jacobian matrix reconstruction mini-app (paper §4.2).
//
// Three implementations:
//   - reconstruct_original(): the "original serial" single function with
//     several levels of loop nesting;
//   - reconstruct_glaf(): the GLAF decomposition into five sub-functions
//     (EdgeJP, cell_loop, edge_loop, angle_check, ioff_search) with the
//     Figure 7 option space: per-level parallelization switches and the
//     no-reallocation (SAVE) option;
//   - reconstruct_manual(): the hand-parallelized original at the
//     outermost (cell) scope with thread-private accumulators — the
//     paper's strongest comparison point (3.85x at 16 threads).
//
// Output correctness is checked the way the paper does: the root mean
// square of the output array against the reference at 1e-7 absolute
// tolerance (parallel summation reassociates).

#include <cstdint>
#include <vector>

#include "fun3d/mesh.hpp"

namespace glaf::fun3d {

class ThreadPoolHandle;

/// Figure 7's option space.
struct ReconOptions {
  bool par_edgejp = false;       ///< parallelize the outer loop over cells
  bool par_cell_loop = false;    ///< parallelize node/face loops in a cell
  bool par_edge_loop = false;    ///< parallelize the edge loop in a cell
  bool par_ioff_search = false;  ///< parallel offset search (needs critical)
  bool no_realloc = false;       ///< SAVE'd temporaries (§4.2.1)
  int threads = 1;
};

/// Execution counters consumed by the performance model.
struct ReconStats {
  std::uint64_t allocations = 0;   ///< temporary-array materializations
  std::uint64_t fork_joins = 0;    ///< parallel regions entered (or charged)
  std::uint64_t edge_calls = 0;    ///< edge_loop invocations
  std::uint64_t searches = 0;      ///< ioff_search invocations
  std::uint64_t cells_skipped = 0; ///< angle_check rejections
};

struct ReconResult {
  std::vector<double> jac;  ///< [n_nodes * kNumEq]
  ReconStats stats;
};

/// Number of temporary arrays the innermost edge loop materializes per
/// call ("the innermost edge loop has 50 dynamically allocated temporary
/// arrays", §4.2.2).
inline constexpr int kEdgeTemps = 50;

ReconResult reconstruct_original(const Mesh& mesh);
ReconResult reconstruct_glaf(const Mesh& mesh, const ReconOptions& options);
ReconResult reconstruct_manual(const Mesh& mesh, int threads);

/// Root mean square of an output array (the dataset's reference check).
double rms_of(const std::vector<double>& values);

/// The offset search exposed for unit tests: index of `target` within
/// node `row`'s CSR adjacency, -1 if absent. Early-return linear scan.
std::int64_t ioff_search(const Mesh& mesh, std::int32_t row,
                         std::int32_t target);

/// The cell-face angle check exposed for unit tests: true = skip cell.
bool angle_check(const Mesh& mesh, std::int64_t cell);

}  // namespace glaf::fun3d
