#pragma once
// The FUN3D kernels expressed in the GLAF IR (small scale) — demonstrates
// that the framework itself handles the §4.2 patterns end to end:
//   - indirect scatter-accumulation into a shared array (needs ATOMIC);
//   - the early-return offset search (needs CRITICAL via manual tweak);
//   - SAVE'd function-local temporaries (the no-reallocation option).
//
// The full-scale performance study (Figure 7) runs on the native C++
// mini-app in recon.hpp; this program is the integration/correctness
// counterpart, mirroring how the paper integrated GLAF-generated code
// back into FUN3D.

#include "core/builder.hpp"
#include "core/program.hpp"

#include "analysis/parallelize.hpp"

namespace glaf::fun3d {

/// Sizes of the GLAF-IR FUN3D program (kept small; the interpreter is the
/// execution vehicle here).
inline constexpr int kGlafNodes = 64;
inline constexpr int kGlafEdges = 512;

/// Functions: edge_scatter (indirect accumulation over all edges),
/// find_offset (early-return CSR search), smooth_q (SAVE'd temporary).
Program build_fun3d_glaf_program();

/// The manual tweaks §4.2.1 lists, keyed for this program: critical for
/// find_offset; (atomics are auto-detected).
TweaksByFunction fun3d_manual_tweaks(const Program& program);

}  // namespace glaf::fun3d
