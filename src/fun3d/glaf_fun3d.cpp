#include "fun3d/glaf_fun3d.hpp"

#include <stdexcept>

namespace glaf::fun3d {

Program build_fun3d_glaf_program() {
  ProgramBuilder pb("fun3d_kernels");

  auto n_nodes = pb.global("n_nodes", DataType::kInt, {},
                           {.init = {std::int64_t{kGlafNodes}}});
  auto n_edges = pb.global("n_edges", DataType::kInt, {},
                           {.init = {std::int64_t{kGlafEdges}}});

  // Mesh connectivity and solution, provided by the encompassing FUN3D
  // code (existing module, §3.1).
  const GridOpts from_fun3d{.from_module = "fun3d_grid"};
  auto edge_a = pb.global("edge_a", DataType::kInt, {E(n_edges)}, from_fun3d);
  auto edge_b = pb.global("edge_b", DataType::kInt, {E(n_edges)}, from_fun3d);
  auto w = pb.global("w", DataType::kDouble, {E(n_edges)}, from_fun3d);
  auto q = pb.global("q", DataType::kDouble, {E(n_nodes)}, from_fun3d);
  auto row_ptr = pb.global("row_ptr", DataType::kInt, {E(n_nodes) + 1},
                           from_fun3d);
  auto col_idx = pb.global("col_idx", DataType::kInt, {E(n_edges) * 2},
                           from_fun3d);

  // Output accumulated by the kernel (module-scope, §3.3).
  auto jac = pb.global("jac", DataType::kDouble, {E(n_nodes)},
                       {.module_scope = true});

  // edge_scatter: the Green-Gauss-style accumulation across all edges.
  // The indirect subscripts make the writes unanalyzable; the atomic
  // update pattern lets the back-end parallelize with OMP ATOMIC.
  {
    auto fb = pb.function("edge_scatter");
    fb.comment("Accumulate edge differences into the Jacobian diagonal");
    const E e = idx("e");
    auto s0 = fb.step("zero");
    s0.comment("zero the output");
    s0.foreach_("k", 0, E(n_nodes) - 1);
    s0.assign(jac(idx("k")), 0.0);

    auto s1 = fb.step("scatter");
    s1.comment("indirect accumulation (needs OMP ATOMIC in parallel)");
    s1.foreach_("e", 0, E(n_edges) - 1);
    s1.assign(jac(edge_a(e)),
              jac(edge_a(e)) + (q(edge_b(e)) - q(edge_a(e))) * w(e));
    s1.assign(jac(edge_b(e)),
              jac(edge_b(e)) - (q(edge_b(e)) - q(edge_a(e))) * w(e));
  }

  // find_offset: the ioff_search pattern — early return inside a loop,
  // parallelizable only with the OMP CRITICAL manual tweak (§4.2.1).
  {
    auto fb = pb.function("find_offset", DataType::kInt);
    fb.comment("Offset of `target` within node `row`'s CSR adjacency");
    auto row = fb.param("row", DataType::kInt);
    auto target = fb.param("target", DataType::kInt);
    const E i = idx("i");
    auto s = fb.step("scan");
    s.foreach_("i", E(row_ptr(E(row))), E(row_ptr(E(row) + 1)) - 1);
    s.if_(col_idx(i) == E(target),
          [&](BodyBuilder& b) { b.ret(i - row_ptr(E(row))); });
    auto s2 = fb.step("miss");
    s2.ret(liti(-1));
  }

  // smooth_q: exercises the SAVE'd temporary (no-reallocation) pattern on
  // a function-local array with a symbolic extent.
  {
    auto fb = pb.function("smooth_q");
    fb.comment("Jacobi-style smoothing with a SAVE'd scratch array");
    auto scratch = fb.local("scratch", DataType::kDouble, {E(n_nodes)},
                            {.save = true});
    const E k = idx("k");
    auto s1 = fb.step("stage");
    s1.foreach_("k", 0, E(n_nodes) - 1);
    s1.assign(scratch(k), jac(k) * 0.5);
    auto s2 = fb.step("apply");
    s2.foreach_("k", 1, E(n_nodes) - 2);
    s2.assign(jac(k), scratch(k) + 0.25 * (scratch(k - 1) + scratch(k + 1)));
  }

  auto result = pb.build();
  if (!result.is_ok()) {
    throw std::runtime_error("FUN3D GLAF program failed validation: " +
                             result.status().message());
  }
  return std::move(result).value();
}

TweaksByFunction fun3d_manual_tweaks(const Program& program) {
  (void)program;
  TweaksByFunction tweaks;
  tweaks["find_offset"].allow_critical = true;
  return tweaks;
}

}  // namespace glaf::fun3d
