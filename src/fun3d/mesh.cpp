#include "fun3d/mesh.hpp"

#include <algorithm>
#include <set>

#include "support/rng.hpp"

namespace glaf::fun3d {

Mesh make_mesh(std::int64_t n_cells, std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0xF00D1234ABCDEF01ULL);
  Mesh m;
  m.n_cells = n_cells;
  m.n_nodes = std::max<std::int64_t>(8, n_cells / 5);

  m.coords.resize(static_cast<std::size_t>(m.n_nodes) * 3);
  m.q.resize(static_cast<std::size_t>(m.n_nodes) * kNumEq);
  for (std::int64_t n = 0; n < m.n_nodes; ++n) {
    for (int d = 0; d < 3; ++d) {
      m.coords[static_cast<std::size_t>(n) * 3 + d] = rng.next_double();
    }
    for (int e = 0; e < kNumEq; ++e) {
      // Plausible conserved-variable magnitudes.
      m.q[static_cast<std::size_t>(n) * kNumEq + e] =
          e == 0 ? rng.uniform(0.8, 1.2)                 // density
                 : (e == kNumEq - 1 ? rng.uniform(2.0, 3.0)  // energy
                                    : rng.uniform(-0.3, 0.3));  // momentum
    }
  }

  // Cells: 4 distinct nodes from a locality window (keeps the adjacency
  // sparse like a real mesh partition). The window is clamped to the node
  // count so tiny meshes stay in range.
  m.cell_nodes.resize(static_cast<std::size_t>(n_cells) * kNodesPerCell);
  const std::int64_t window = std::min<std::int64_t>(
      m.n_nodes, std::max<std::int64_t>(16, m.n_nodes / 64));
  for (std::int64_t c = 0; c < n_cells; ++c) {
    const std::int64_t base =
        static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(std::max<std::int64_t>(1, m.n_nodes - window))));
    std::int32_t picked[kNodesPerCell];
    int count = 0;
    while (count < kNodesPerCell) {
      const auto candidate = static_cast<std::int32_t>(
          base + static_cast<std::int64_t>(rng.next_below(
                     static_cast<std::uint64_t>(window))));
      bool duplicate = false;
      for (int i = 0; i < count; ++i) duplicate |= picked[i] == candidate;
      if (!duplicate) picked[count++] = candidate;
    }
    for (int i = 0; i < kNodesPerCell; ++i) {
      m.cell_nodes[static_cast<std::size_t>(c) * kNodesPerCell + i] = picked[i];
    }
  }

  // Edge visits: 8..12 per cell (average 10 -> 1M cells gives ~10M edges,
  // matching the paper's dataset scale). Endpoints drawn from the cell's
  // nodes.
  m.cell_edge_ptr.resize(static_cast<std::size_t>(n_cells) + 1);
  m.cell_edge_ptr[0] = 0;
  for (std::int64_t c = 0; c < n_cells; ++c) {
    const int edges = 8 + static_cast<int>(rng.next_below(5));
    m.cell_edge_ptr[static_cast<std::size_t>(c) + 1] =
        m.cell_edge_ptr[static_cast<std::size_t>(c)] + edges;
  }
  m.n_edges = m.cell_edge_ptr[static_cast<std::size_t>(n_cells)];
  m.edge_a.resize(static_cast<std::size_t>(m.n_edges));
  m.edge_b.resize(static_cast<std::size_t>(m.n_edges));
  for (std::int64_t c = 0; c < n_cells; ++c) {
    for (std::int64_t e = m.edges_of_cell_begin(c); e < m.edges_of_cell_end(c);
         ++e) {
      const int ia = static_cast<int>(rng.next_below(kNodesPerCell));
      int ib = static_cast<int>(rng.next_below(kNodesPerCell));
      if (ib == ia) ib = (ib + 1) % kNodesPerCell;
      m.edge_a[static_cast<std::size_t>(e)] =
          m.cell_nodes[static_cast<std::size_t>(c) * kNodesPerCell + ia];
      m.edge_b[static_cast<std::size_t>(e)] =
          m.cell_nodes[static_cast<std::size_t>(c) * kNodesPerCell + ib];
    }
  }

  // CSR adjacency from the edge list (sorted, unique) — what ioff_search
  // scans to find the insertion offset.
  std::vector<std::set<std::int32_t>> adjacency(
      static_cast<std::size_t>(m.n_nodes));
  for (std::int64_t e = 0; e < m.n_edges; ++e) {
    const std::int32_t a = m.edge_a[static_cast<std::size_t>(e)];
    const std::int32_t b = m.edge_b[static_cast<std::size_t>(e)];
    adjacency[static_cast<std::size_t>(a)].insert(b);
    adjacency[static_cast<std::size_t>(b)].insert(a);
  }
  m.row_ptr.resize(static_cast<std::size_t>(m.n_nodes) + 1);
  m.row_ptr[0] = 0;
  for (std::int64_t n = 0; n < m.n_nodes; ++n) {
    m.row_ptr[static_cast<std::size_t>(n) + 1] =
        m.row_ptr[static_cast<std::size_t>(n)] +
        static_cast<std::int32_t>(adjacency[static_cast<std::size_t>(n)].size());
  }
  m.col_idx.reserve(static_cast<std::size_t>(m.row_ptr.back()));
  for (std::int64_t n = 0; n < m.n_nodes; ++n) {
    for (const std::int32_t neighbor : adjacency[static_cast<std::size_t>(n)]) {
      m.col_idx.push_back(neighbor);
    }
  }
  return m;
}

}  // namespace glaf::fun3d
