#include "perfmodel/sarb_model.hpp"

#include <algorithm>

#include "codegen/directive_policy.hpp"
#include "support/strings.hpp"

namespace glaf {
namespace {

/// Speedup the compiler extracts from a directive-free loop of this class.
double compiler_speedup(LoopClass cls, const SarbModelParams& p) {
  switch (cls) {
    case LoopClass::kInitZero:
      return p.memset_speedup;  // emitted as memset
    case LoopClass::kBroadcast:
    case LoopClass::kSimpleSingle:
    case LoopClass::kSimpleDouble:
      return p.simd_speedup;  // vectorized / unrolled
    case LoopClass::kComplex:
    case LoopClass::kStraightLine:
      return 1.0;  // "the compiler fails to identify these as parallel"
  }
  return 1.0;
}

}  // namespace

double model_loop_time(const fuliou::LoopInfo& loop, SarbVariant variant,
                       DirectivePolicy policy, int threads,
                       const MachineModel& machine,
                       const SarbModelParams& params) {
  const StepVerdict& v = loop.verdict;
  const double stmts = std::max(1, loop.stmt_count);
  const std::int64_t trip = v.has_loop ? std::max<std::int64_t>(1, v.trip_count)
                                       : 1;
  const double body = static_cast<double>(trip) * stmts * params.stmt_cost;

  const double structure =
      variant == SarbVariant::kOriginalSerial ? 1.0
                                              : params.glaf_structure_overhead;

  const bool directive = variant == SarbVariant::kGlafParallel &&
                         keep_directive(policy, v);
  if (!directive) {
    // Serial loop: the compiler gets to optimize it.
    if (!v.has_loop) return body * structure;
    const bool optimizable = v.compiler_vectorizable;
    const double boost =
        optimizable ? compiler_speedup(v.loop_class, params) : 1.0;
    return body * structure / boost;
  }

  // Parallel loop: region overhead + body divided across effective
  // parallelism (never more than iterations), with the directive
  // inhibiting the compiler's own optimizations.
  double region = params.fork_join_cost +
                  params.per_thread_cost * static_cast<double>(threads);
  if (trip < params.small_trip_cutoff) region += params.small_trip_tax;

  // Without COLLAPSE, only the outermost loop's iterations distribute
  // (for the 2x60 complex loops that means at most 2 ways).
  const std::int64_t distributable =
      params.collapse_directive || v.collapse <= 1
          ? trip
          : std::max<std::int64_t>(1, v.outer_trip_count);
  double parallelism =
      std::min(machine.effective_parallelism(threads),
               static_cast<double>(distributable));
  double oversub = 1.0;
  if (threads > machine.physical_cores) {
    oversub = machine.oversubscription_penalty;
  }
  const double parallel_body =
      body * structure * params.parallel_body_penalty * oversub / parallelism;
  return region + parallel_body;
}

double model_sarb_time(const std::vector<fuliou::LoopInfo>& inventory,
                       SarbVariant variant, DirectivePolicy policy,
                       int threads, const MachineModel& machine,
                       const SarbModelParams& params) {
  double total = 0.0;
  for (const fuliou::LoopInfo& loop : inventory) {
    total += model_loop_time(loop, variant, policy, threads, machine, params);
  }
  return total;
}

std::vector<SarbPoint> figure5_series(
    const std::vector<fuliou::LoopInfo>& inventory, int threads,
    const MachineModel& machine, const SarbModelParams& params) {
  const double original =
      model_sarb_time(inventory, SarbVariant::kOriginalSerial,
                      DirectivePolicy::kV0, 1, machine, params);
  std::vector<SarbPoint> out;
  out.push_back({"original serial", 1.0});
  out.push_back({"GLAF serial",
                 original / model_sarb_time(inventory, SarbVariant::kGlafSerial,
                                            DirectivePolicy::kV0, 1, machine,
                                            params)});
  for (const DirectivePolicy policy :
       {DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
        DirectivePolicy::kV3}) {
    out.push_back({cat("GLAF-parallel ", to_string(policy)),
                   original / model_sarb_time(inventory,
                                              SarbVariant::kGlafParallel,
                                              policy, threads, machine,
                                              params)});
  }
  return out;
}

std::vector<SarbPoint> figure6_series(
    const std::vector<fuliou::LoopInfo>& inventory,
    const std::vector<int>& thread_counts, const MachineModel& machine,
    const SarbModelParams& params) {
  const double glaf_serial =
      model_sarb_time(inventory, SarbVariant::kGlafSerial,
                      DirectivePolicy::kV0, 1, machine, params);
  std::vector<SarbPoint> out;
  out.push_back({"GLAF-serial", 1.0});
  for (const int t : thread_counts) {
    out.push_back({cat("GLAF-parallel (", t, "T)"),
                   glaf_serial / model_sarb_time(inventory,
                                                 SarbVariant::kGlafParallel,
                                                 DirectivePolicy::kV3, t,
                                                 machine, params)});
  }
  return out;
}

}  // namespace glaf
