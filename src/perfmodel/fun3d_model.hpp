#pragma once
// Cost model for the FUN3D Jacobian-reconstruction option space
// (Figure 7): 16-thread speedups for every combination of per-level
// parallelization and the no-reallocation option, plus the manually
// parallelized comparison point.
//
// Structure comes from the mini-app's real execution counters
// (ReconStats: edge calls, searches, allocations, fork/joins, skipped
// cells); unit costs are measured on the host by calibrate.hpp or taken
// from the documented defaults. Thread scaling uses the dual-Xeon
// machine model.

#include <string>
#include <vector>

#include "fun3d/recon.hpp"
#include "perfmodel/machine_model.hpp"

namespace glaf {

/// Per-operation costs in microseconds (plus dimensionless factors).
/// Defaults are representative of a ~3.5 GHz Xeon and are overridden by
/// host measurements in the benchmark harness.
struct Fun3dUnitCosts {
  double cell_us = 0.08;      ///< per-cell context build (nodes + faces)
  double edge_us = 0.35;      ///< per-edge computation (50 temporaries)
  double search_us = 0.04;    ///< per-edge offset search
  double alloc_us = 0.05;     ///< per temporary-array allocation
  double fork_base_us = 6.0;  ///< parallel-region entry/exit
  double fork_per_thread_us = 1.0;
  double nested_fork_us = 0.4;  ///< region entered inside an active region
  /// Contended-atomic accumulation: multiplier on the accumulation share
  /// of the edge work when the output array is shared across threads.
  double atomic_factor = 3.2;
  double atomic_share = 0.45;
  /// GLAF's five-sub-function decomposition overhead vs the single
  /// original function.
  double glaf_struct_factor = 1.25;
};

/// One Figure 7 configuration.
struct Fun3dConfig {
  fun3d::ReconOptions options;
  bool manual = false;  ///< hand-parallelized original (ignores options
                        ///< other than threads)
};

/// Workload shape: counts from a real mesh/run (scaled or full).
struct Fun3dWorkload {
  std::int64_t cells = 0;
  std::int64_t processed_cells = 0;  ///< cells - angle_check skips
  std::int64_t edges = 0;
  double avg_edges_per_cell = 10.0;
  double avg_row_entries = 8.0;  ///< CSR adjacency row length
};

/// Derive the workload shape from a mesh plus a run's stats.
Fun3dWorkload workload_from(const fun3d::Mesh& mesh,
                            const fun3d::ReconStats& stats);

/// Modeled wall time in microseconds.
double model_fun3d_time(const Fun3dWorkload& workload,
                        const Fun3dConfig& config, int threads,
                        const MachineModel& machine,
                        const Fun3dUnitCosts& costs = {});

/// One Figure 7 bar.
struct Fun3dPoint {
  std::string label;
  fun3d::ReconOptions options;
  bool manual = false;
  double speedup = 0.0;  ///< vs the original serial implementation
};

/// The full Figure 7 series: original serial baseline, every combination
/// of {EdgeJP, cell_loop, edge_loop, ioff_search} x {no-reallocation}
/// (the paper omits angle-check parallelization as negligible), plus the
/// manual parallel version, at `threads` threads.
std::vector<Fun3dPoint> figure7_series(const Fun3dWorkload& workload,
                                       int threads,
                                       const MachineModel& machine,
                                       const Fun3dUnitCosts& costs = {});

}  // namespace glaf
