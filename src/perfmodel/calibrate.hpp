#pragma once
// Host calibration for the performance models: measures the unit costs
// the models consume (allocation, parallel-region fork/join, atomic
// accumulation, kernel body throughput) on the machine actually running
// the benchmarks, so the modeled times are anchored in real measurements
// even though the target machines are simulated.

#include "fun3d/mesh.hpp"
#include "perfmodel/fun3d_model.hpp"
#include "perfmodel/machine_model.hpp"
#include "runtime/thread_pool.hpp"

namespace glaf {

/// Measure FUN3D unit costs on this host. `probe_mesh` is reconstructed
/// once (serially) to calibrate the body throughput; allocation, fork and
/// atomic costs come from microbenchmarks. Ratio-type constants
/// (atomic_share, glaf_struct_factor) keep their documented defaults.
Fun3dUnitCosts measure_fun3d_unit_costs(const fun3d::Mesh& probe_mesh);

/// Measure the cost of one straight-line "statement unit" in seconds
/// (used to report the SARB model's abstract times as wall-clock
/// estimates).
double measure_statement_unit_seconds();

/// Calibrate the native JIT's profit gate against a live pool: time an
/// empty dispatch through `pool` (fork_join_seconds) and a straight-line
/// statement loop (unit_seconds). The resulting threshold_units() is the
/// break-even work size for gated region dispatch on this host.
ParallelGate measure_parallel_gate(ThreadPool& pool);

}  // namespace glaf
