#include "perfmodel/calibrate.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "fun3d/recon.hpp"
#include "runtime/thread_pool.hpp"
#include "support/timer.hpp"

namespace glaf {
namespace {

/// Keep the optimizer from deleting measured work.
volatile double g_sink = 0.0;

double measure_alloc_us() {
  // One edge_loop call allocates a buffer of kEdgeTemps*kNumEq doubles and
  // counts as kEdgeTemps allocations; measure the per-allocation share.
  constexpr int kReps = 20000;
  const double secs = time_best([&] {
    double local = 0.0;
    for (int i = 0; i < kReps; ++i) {
      std::vector<double> buf(
          static_cast<std::size_t>(fun3d::kEdgeTemps) * fun3d::kNumEq, 0.0);
      local += buf[i % buf.size()];
    }
    g_sink = local;
  });
  return secs * 1e6 / (static_cast<double>(kReps) * fun3d::kEdgeTemps);
}

double measure_fork_base_us() {
  ThreadPool pool(2);
  constexpr int kReps = 200;
  const double secs = time_best([&] {
    for (int i = 0; i < kReps; ++i) {
      pool.parallel_for(2, [](int, std::int64_t, std::int64_t) {});
    }
  });
  return secs * 1e6 / kReps;
}

double measure_atomic_factor() {
  constexpr int kReps = 200000;
  // Serial dependency through memory so the compiler cannot vectorize or
  // fold the plain baseline away.
  volatile double plain_target = 0.0;
  const double plain = time_best([&] {
    for (int i = 0; i < kReps; ++i) plain_target = plain_target + 1.0;
    g_sink = plain_target;
  });
  double atomic_target = 0.0;
  const double atomic = time_best([&] {
    for (int i = 0; i < kReps; ++i) {
      std::atomic_ref<double> ref(atomic_target);
      ref.fetch_add(1.0, std::memory_order_relaxed);
    }
    g_sink = atomic_target;
  });
  // Single-threaded atomic cost understates cross-socket contention;
  // scale modestly and clamp to the physically plausible range (an
  // uncontended CAS-add is 2-5x a plain add; contended, somewhat more).
  const double uncontended = atomic > 0.0 && plain > 0.0 ? atomic / plain : 2.0;
  return std::clamp(uncontended * 1.6, 2.4, 3.6);
}

}  // namespace

Fun3dUnitCosts measure_fun3d_unit_costs(const fun3d::Mesh& probe_mesh) {
  Fun3dUnitCosts costs;  // documented defaults

  // Body throughput: time the original serial reconstruction and scale
  // the body unit costs so the model reproduces the measurement.
  const double measured_secs =
      time_best([&] { g_sink = fun3d::rms_of(fun3d::reconstruct_original(probe_mesh).jac); },
                /*min_seconds=*/0.1, /*min_reps=*/2);
  const fun3d::ReconResult probe = fun3d::reconstruct_original(probe_mesh);
  Fun3dWorkload w = workload_from(probe_mesh, probe.stats);
  Fun3dConfig serial;
  serial.manual = true;
  const double modeled_us =
      model_fun3d_time(w, serial, 1, MachineModel::dual_xeon_e5_2637v4(),
                       costs);
  if (modeled_us > 0.0) {
    const double scale = measured_secs * 1e6 / modeled_us;
    costs.cell_us *= scale;
    costs.edge_us *= scale;
    costs.search_us *= scale;
  }

  // glibc's tcache fast path can undercut a real FORTRAN ALLOCATE by an
  // order of magnitude; floor at a representative allocator cost.
  costs.alloc_us = std::max(measure_alloc_us(), 0.02);
  costs.fork_base_us = measure_fork_base_us();
  costs.fork_per_thread_us = costs.fork_base_us / 6.0;
  costs.nested_fork_us = costs.fork_base_us / 15.0;
  costs.atomic_factor = measure_atomic_factor();
  return costs;
}

double measure_statement_unit_seconds() {
  constexpr int kReps = 500000;
  std::vector<double> buf(64, 1.0);
  const double secs = time_best([&] {
    double acc = 0.0;
    for (int i = 0; i < kReps; ++i) {
      acc += buf[static_cast<std::size_t>(i) % buf.size()] * 1.0000001;
    }
    g_sink = acc;
  });
  return secs / kReps;
}

ParallelGate measure_parallel_gate(ThreadPool& pool) {
  ParallelGate gate;
  gate.unit_seconds = measure_statement_unit_seconds();
  if (pool.size() > 1) {
    constexpr int kReps = 500;
    const double secs = time_best([&] {
      for (int i = 0; i < kReps; ++i) {
        pool.parallel_for(pool.size(),
                          [](int, std::int64_t, std::int64_t) {});
      }
    });
    gate.fork_join_seconds = secs / kReps;
  }
  return gate;
}

}  // namespace glaf
