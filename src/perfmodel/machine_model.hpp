#pragma once
// Machine models for the performance-prediction back-end.
//
// The paper proposes "the incorporation of a performance prediction /
// modeling back-end that will guide the automatic code generation in a
// more intelligent way" as future work (§4.1.2); this module implements
// it, and doubles as the reproduction's stand-in for the paper's two
// testbeds (an Intel Core i5-2400 desktop and a dual-socket Xeon
// E5-2637 v4 server), neither of which is available here — the benchmark
// container exposes a single core, so multi-thread wall-clock cannot be
// measured directly. See DESIGN.md, substitution table.

#include <string>

namespace glaf {

/// Thread-scaling characteristics of one machine.
struct MachineModel {
  std::string name;
  int physical_cores = 4;
  int logical_cores = 8;
  /// Throughput contribution of a hyper-thread relative to a core.
  double ht_yield = 0.15;
  /// Effective-parallelism ceiling for bandwidth-bound kernels (streaming
  /// through large arrays stops scaling at this many cores' worth of
  /// memory bandwidth). 0 = unlimited.
  double bandwidth_cap = 0.0;
  /// Multiplicative body penalty when more threads run than physical
  /// cores (coherence traffic + OMP runtime with tiny chunks, §4.1.2's
  /// 8-thread collapse).
  double oversubscription_penalty = 6.8;

  /// Effective parallel speedup available to `threads` threads on a
  /// compute-bound region.
  [[nodiscard]] double effective_parallelism(int threads) const;

  /// Same, clamped by the bandwidth cap (for streaming kernels).
  [[nodiscard]] double effective_bandwidth_parallelism(int threads) const;

  /// The paper's desktop testbed: Intel Core i5-2400, four cores at
  /// 3.10 GHz ("up to 8 logical cores with hyper-threading" as §4.1.2
  /// describes its configuration).
  static MachineModel i5_2400();

  /// The paper's server testbed: two Xeon E5-2637 v4 (4 cores / 8 threads
  /// each) at 3.50 GHz with 256 GB DDR4-2400.
  static MachineModel dual_xeon_e5_2637v4();
};

}  // namespace glaf
