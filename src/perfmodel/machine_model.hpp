#pragma once
// Machine models for the performance-prediction back-end.
//
// The paper proposes "the incorporation of a performance prediction /
// modeling back-end that will guide the automatic code generation in a
// more intelligent way" as future work (§4.1.2); this module implements
// it, and doubles as the reproduction's stand-in for the paper's two
// testbeds (an Intel Core i5-2400 desktop and a dual-socket Xeon
// E5-2637 v4 server), neither of which is available here — the benchmark
// container exposes a single core, so multi-thread wall-clock cannot be
// measured directly. See DESIGN.md, substitution table.

#include <cstdint>
#include <string>

namespace glaf {

/// Cost model behind the native JIT's profit gate: a parallel region is
/// worth dispatching only when the serial time its workers save exceeds
/// the fork/join they cost. With work W (in abstract statement units),
/// serial time is W*unit_seconds, parallel time is roughly
/// fork_join_seconds + W*unit_seconds/threads, so dispatch pays off when
///   W >= fork_join_seconds / (unit_seconds * (1 - 1/threads)).
/// Fully inline (constants + arithmetic) so the JIT engine can consume
/// it without linking the heavy perfmodel library; calibrate.hpp refines
/// the two constants from live measurements.
struct ParallelGate {
  /// One pool dispatch + join, seconds (spin-then-park pools land around
  /// a few microseconds; parked wakeups dominate).
  double fork_join_seconds = 10e-6;
  /// One abstract work unit (roughly one interpreter-exact C statement),
  /// seconds.
  double unit_seconds = 1e-9;

  /// Gate value meaning "never dispatch" (compares above any n * units
  /// product, which plan_profit caps below 2^50).
  static constexpr std::int64_t kAlwaysSerialUnits = std::int64_t{1} << 62;

  /// Minimum total work units for which dispatching to `threads` ranks
  /// beats running serially. threads <= 1 can never win: the fork/join
  /// buys nothing, so the threshold is kAlwaysSerialUnits.
  [[nodiscard]] std::int64_t threshold_units(int threads) const {
    if (threads <= 1) return kAlwaysSerialUnits;
    if (unit_seconds <= 0.0 || fork_join_seconds <= 0.0) return 1;
    const double gain = 1.0 - 1.0 / threads;
    const double units = fork_join_seconds / (unit_seconds * gain);
    if (units >= static_cast<double>(kAlwaysSerialUnits)) {
      return kAlwaysSerialUnits;
    }
    return units < 1.0 ? 1 : static_cast<std::int64_t>(units);
  }
};

/// Thread-scaling characteristics of one machine.
struct MachineModel {
  std::string name;
  int physical_cores = 4;
  int logical_cores = 8;
  /// Throughput contribution of a hyper-thread relative to a core.
  double ht_yield = 0.15;
  /// Effective-parallelism ceiling for bandwidth-bound kernels (streaming
  /// through large arrays stops scaling at this many cores' worth of
  /// memory bandwidth). 0 = unlimited.
  double bandwidth_cap = 0.0;
  /// Multiplicative body penalty when more threads run than physical
  /// cores (coherence traffic + OMP runtime with tiny chunks, §4.1.2's
  /// 8-thread collapse).
  double oversubscription_penalty = 6.8;

  /// Effective parallel speedup available to `threads` threads on a
  /// compute-bound region.
  [[nodiscard]] double effective_parallelism(int threads) const;

  /// Same, clamped by the bandwidth cap (for streaming kernels).
  [[nodiscard]] double effective_bandwidth_parallelism(int threads) const;

  /// The paper's desktop testbed: Intel Core i5-2400, four cores at
  /// 3.10 GHz ("up to 8 logical cores with hyper-threading" as §4.1.2
  /// describes its configuration).
  static MachineModel i5_2400();

  /// The paper's server testbed: two Xeon E5-2637 v4 (4 cores / 8 threads
  /// each) at 3.50 GHz with 256 GB DDR4-2400.
  static MachineModel dual_xeon_e5_2637v4();
};

}  // namespace glaf
