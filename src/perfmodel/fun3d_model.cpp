#include "perfmodel/fun3d_model.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace glaf {
namespace {

double fork_cost(int threads, const Fun3dUnitCosts& c) {
  return c.fork_base_us + c.fork_per_thread_us * threads;
}

}  // namespace

Fun3dWorkload workload_from(const fun3d::Mesh& mesh,
                            const fun3d::ReconStats& stats) {
  Fun3dWorkload w;
  w.cells = mesh.n_cells;
  w.processed_cells =
      mesh.n_cells - static_cast<std::int64_t>(stats.cells_skipped);
  w.edges = static_cast<std::int64_t>(stats.edge_calls);
  if (w.cells > 0) {
    w.avg_edges_per_cell =
        static_cast<double>(mesh.n_edges) / static_cast<double>(w.cells);
  }
  if (mesh.n_nodes > 0) {
    w.avg_row_entries = static_cast<double>(mesh.col_idx.size()) /
                        static_cast<double>(mesh.n_nodes);
  }
  return w;
}

double model_fun3d_time(const Fun3dWorkload& w, const Fun3dConfig& config,
                        int threads, const MachineModel& machine,
                        const Fun3dUnitCosts& c) {
  const double cells = static_cast<double>(w.processed_cells);
  const double edges = static_cast<double>(w.edges);

  const double cell_work = cells * c.cell_us;
  double edge_work = edges * c.edge_us;
  const double search_work = edges * c.search_us;

  if (config.manual) {
    // The hand-parallelized original: outermost loop split across
    // threads, thread-private outputs (no atomics), stack temporaries
    // (no allocation), single fork/join. Bandwidth-bound scaling.
    const double p = machine.effective_bandwidth_parallelism(threads);
    return (cell_work + edge_work + search_work) / p +
           fork_cost(threads, c);
  }

  const fun3d::ReconOptions& opt = config.options;
  const bool any_parallel =
      opt.par_edgejp || opt.par_cell_loop || opt.par_edge_loop;

  // Reallocation of the 50 temporaries per edge call (§4.2.1) unless the
  // SAVE option is on.
  const double alloc_work =
      opt.no_realloc ? 0.0
                     : edges * static_cast<double>(fun3d::kEdgeTemps) *
                           c.alloc_us;

  // Shared-output atomic accumulation whenever cells or edges race.
  if (opt.par_edgejp || opt.par_edge_loop) {
    edge_work *= 1.0 + c.atomic_share * (c.atomic_factor - 1.0);
  }

  const double body =
      (cell_work + edge_work + search_work + alloc_work) *
      c.glaf_struct_factor;

  if (opt.par_edgejp) {
    // Coarse-grained: one region over all cells; interior "parallel"
    // regions serialize (OpenMP nested parallelism off) but still pay a
    // small entry cost each.
    const double p = machine.effective_bandwidth_parallelism(threads);
    double nested_regions = 0.0;
    if (opt.par_cell_loop) nested_regions += 2.0 * cells;
    if (opt.par_edge_loop) nested_regions += cells;
    if (opt.par_ioff_search) nested_regions += edges;
    return body / p + fork_cost(threads, c) +
           nested_regions * c.nested_fork_us / p;
  }

  if (!any_parallel && !opt.par_ioff_search) {
    return body;  // GLAF serial (with or without reallocation)
  }

  // Inner-level parallelism only: the outer cell loop is serial, so every
  // interior region pays a full fork/join — the mechanism behind the
  // figure's deep slowdowns.
  const double eff = machine.effective_parallelism(threads);
  double time = alloc_work * c.glaf_struct_factor;
  double regions = 0.0;

  if (opt.par_cell_loop) {
    const double p = std::min(eff, 4.0);  // 4 nodes / 4 faces per cell
    time += cell_work * c.glaf_struct_factor / p;
    regions += 2.0 * cells;
  } else {
    time += cell_work * c.glaf_struct_factor;
  }

  if (opt.par_edge_loop) {
    const double p = std::min(eff, w.avg_edges_per_cell);
    time += edge_work * c.glaf_struct_factor / p;
    regions += cells;
  } else {
    time += edge_work * c.glaf_struct_factor;
  }

  if (opt.par_ioff_search) {
    const double p = std::min(eff, w.avg_row_entries);
    time += search_work * c.glaf_struct_factor / p;
    regions += edges;
  } else {
    time += search_work * c.glaf_struct_factor;
  }

  return time + regions * fork_cost(threads, c);
}

std::vector<Fun3dPoint> figure7_series(const Fun3dWorkload& workload,
                                       int threads,
                                       const MachineModel& machine,
                                       const Fun3dUnitCosts& costs) {
  Fun3dConfig original;  // serial original == manual at 1 thread
  original.manual = true;
  const double serial_time =
      model_fun3d_time(workload, original, 1, machine, costs);

  std::vector<Fun3dPoint> out;
  const auto label_of = [](const fun3d::ReconOptions& o) {
    std::vector<std::string> parts;
    if (o.par_edgejp) parts.push_back("EdgeJP");
    if (o.par_cell_loop) parts.push_back("cell_loop");
    if (o.par_edge_loop) parts.push_back("edge_loop");
    if (o.par_ioff_search) parts.push_back("ioff");
    if (o.no_realloc) parts.push_back("no-realloc");
    return parts.empty() ? std::string("serial (GLAF)") : join(parts, "+");
  };

  // Every combination of the four parallel switches x no-realloc.
  for (int mask = 0; mask < 32; ++mask) {
    fun3d::ReconOptions o;
    o.par_edgejp = (mask & 1) != 0;
    o.par_cell_loop = (mask & 2) != 0;
    o.par_edge_loop = (mask & 4) != 0;
    o.par_ioff_search = (mask & 8) != 0;
    o.no_realloc = (mask & 16) != 0;
    o.threads = threads;
    Fun3dConfig cfg;
    cfg.options = o;
    const double t = model_fun3d_time(workload, cfg, threads, machine, costs);
    out.push_back({label_of(o), o, false, serial_time / t});
  }

  Fun3dConfig manual;
  manual.manual = true;
  const double manual_time =
      model_fun3d_time(workload, manual, threads, machine, costs);
  fun3d::ReconOptions manual_opts;
  manual_opts.threads = threads;
  out.push_back({"manual parallel", manual_opts, true,
                 serial_time / manual_time});
  return out;
}

}  // namespace glaf
