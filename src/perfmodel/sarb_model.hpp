#pragma once
// Cost model for the Synoptic SARB kernel set (Figures 5 and 6).
//
// Inputs are the *actual* analysis artifacts of the GLAF SARB program —
// loop class, trip count, statement count, parallelizability — so the
// model's structure is grounded in the real loop inventory; its constants
// (compiler-optimization speedups, OpenMP region costs, GLAF structural
// overhead) are calibrated to the paper's published measurements and
// documented in EXPERIMENTS.md.

#include <string>
#include <vector>

#include "codegen/options.hpp"
#include "fuliou/harness.hpp"
#include "perfmodel/machine_model.hpp"

namespace glaf {

/// Which build of the kernels is being modeled.
enum class SarbVariant {
  kOriginalSerial,  ///< hand-written original
  kGlafSerial,      ///< GLAF-generated, OpenMP off
  kGlafParallel,    ///< GLAF-generated with a directive policy
};

/// Calibrated model constants. All times are in abstract "statement
/// units" (the cost of one straight-line statement execution); speedups
/// are dimensionless. Defaults reproduce Figures 5/6 shapes.
struct SarbModelParams {
  double stmt_cost = 1.0;
  /// GLAF's enforced program structure costs a few percent serially
  /// (function-call overhead, missed cross-function optimization) — the
  /// paper measures 0.89x for GLAF serial.
  double glaf_structure_overhead = 1.124;
  /// An OMP directive inhibits some compiler optimization of the body.
  double parallel_body_penalty = 1.02;
  /// Compiler optimizations on directive-free loops (§4.1.2): memset for
  /// zero-initializations, SIMD for simple loops.
  double memset_speedup = 8.0;
  double simd_speedup = 4.0;
  /// OpenMP parallel-region costs: fixed fork/join plus per-thread.
  double fork_join_cost = 30.0;
  double per_thread_cost = 15.5;
  /// Sub-150-iteration regions additionally pay cross-core cache traffic
  /// that cannot be amortized (the paper's 120-iteration observation).
  double small_trip_tax = 48.0;
  std::int64_t small_trip_cutoff = 150;
  /// Emit COLLAPSE on nested parallel loops. Off, only the outermost
  /// loop's iterations are distributed (the collapse ablation study).
  bool collapse_directive = true;
};

/// Modeled execution time of one analyzed loop/step.
double model_loop_time(const fuliou::LoopInfo& loop, SarbVariant variant,
                       DirectivePolicy policy, int threads,
                       const MachineModel& machine,
                       const SarbModelParams& params);

/// Modeled execution time of the whole kernel set.
double model_sarb_time(const std::vector<fuliou::LoopInfo>& inventory,
                       SarbVariant variant, DirectivePolicy policy,
                       int threads, const MachineModel& machine,
                       const SarbModelParams& params = {});

/// One Figure 5 bar: variant label + modeled speedup vs original serial.
struct SarbPoint {
  std::string label;
  double speedup = 0.0;
};

/// The full Figure 5 series (original serial, GLAF serial, v0..v3 at the
/// given thread count).
std::vector<SarbPoint> figure5_series(
    const std::vector<fuliou::LoopInfo>& inventory, int threads,
    const MachineModel& machine, const SarbModelParams& params = {});

/// The Figure 6 series: GLAF-parallel v3 at each thread count, as speedup
/// over GLAF serial.
std::vector<SarbPoint> figure6_series(
    const std::vector<fuliou::LoopInfo>& inventory,
    const std::vector<int>& thread_counts, const MachineModel& machine,
    const SarbModelParams& params = {});

}  // namespace glaf
