#include "perfmodel/machine_model.hpp"

#include <algorithm>

namespace glaf {

double MachineModel::effective_parallelism(int threads) const {
  const int t = std::clamp(threads, 1, logical_cores);
  const int on_cores = std::min(t, physical_cores);
  const int on_ht = std::max(0, t - physical_cores);
  return static_cast<double>(on_cores) + ht_yield * on_ht;
}

double MachineModel::effective_bandwidth_parallelism(int threads) const {
  const double p = effective_parallelism(threads);
  return bandwidth_cap > 0.0 ? std::min(p, bandwidth_cap) : p;
}

MachineModel MachineModel::i5_2400() {
  MachineModel m;
  m.name = "Intel Core i5-2400 (4C, 3.10 GHz)";
  m.physical_cores = 4;
  m.logical_cores = 8;
  m.ht_yield = 0.15;
  m.bandwidth_cap = 0.0;
  m.oversubscription_penalty = 6.8;
  return m;
}

MachineModel MachineModel::dual_xeon_e5_2637v4() {
  MachineModel m;
  m.name = "2x Intel Xeon E5-2637 v4 (8C/16T, 3.50 GHz)";
  m.physical_cores = 8;
  m.logical_cores = 16;
  m.ht_yield = 0.30;
  // The Jacobian reconstruction streams q/jac/connectivity: bandwidth
  // bound well before 8 cores (matches the paper's 3.85x manual ceiling
  // at 16 threads).
  m.bandwidth_cap = 3.9;
  m.oversubscription_penalty = 1.6;
  return m;
}

}  // namespace glaf
