#pragma once
// Programmatic builder API over the GLAF IR — the reproduction's stand-in
// for the paper's HTML5/JavaScript graphical programming interface (GPI).
//
// Every GPI action described in the paper maps to a builder call:
//   - creating a grid in a scope            -> global()/param()/local()
//   - "Global variable exists in existing
//      module" checkbox (Figure 3)          -> GridOpts{.from_module=...}
//   - "Grid belongs in COMMON block"        -> GridOpts{.common_block=...}
//   - module-scope variable (§3.3)          -> GridOpts{.module_scope=true}
//   - element of existing TYPE (§3.5)       -> GridOpts{.type_parent=...}
//   - void return => SUBROUTINE (Figure 4)  -> function(name) default kVoid
//   - a step's Index Range (foreach)        -> StepBuilder::foreach_()
//   - Formula / Condition rows (Figure 2)   -> assign()/if_()
//
// Expressions are composed with the small `E` wrapper (operator
// overloading), e.g.:
//
//   ProgramBuilder pb("img_mod");
//   auto img  = pb.global("img_src", DataType::kInt, {lit(4), lit(4)});
//   auto fb   = pb.function("blur");
//   auto s    = fb.step("Step1");
//   s.foreach_("row", 0, 3).foreach_("col", 0, 3);
//   s.assign(img(idx("row"), idx("col")), img(idx("row"), idx("col")) * 2.0);
//   StatusOr<Program> prog = pb.build();
//
// Builders are lightweight index-based handles into the ProgramBuilder;
// they remain valid for the ProgramBuilder's lifetime.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf {

/// Expression handle for the builder DSL. Implicitly constructible from
/// numeric literals so `x + 1.5` works.
class E {
 public:
  E() = default;
  E(ExprPtr node) : node_(std::move(node)) {}  // NOLINT
  E(double v) : node_(make_real(v)) {}         // NOLINT
  E(int v) : node_(make_int(v)) {}             // NOLINT
  E(std::int64_t v) : node_(make_int(v)) {}    // NOLINT
  E(bool v) : node_(make_bool(v)) {}           // NOLINT

  [[nodiscard]] const ExprPtr& node() const { return node_; }
  [[nodiscard]] bool valid() const { return node_ != nullptr; }

 private:
  ExprPtr node_;
};

/// Loop index variable reference, e.g. idx("row").
inline E idx(std::string name) { return E(make_index(std::move(name))); }
/// Explicit literals (useful where implicit conversion is ambiguous).
inline E lit(double v) { return E(make_real(v)); }
inline E liti(std::int64_t v) { return E(make_int(v)); }

// Arithmetic / comparison / logical operators build AST nodes.
inline E operator+(E a, E b) { return make_binary(BinOp::kAdd, a.node(), b.node()); }
inline E operator-(E a, E b) { return make_binary(BinOp::kSub, a.node(), b.node()); }
inline E operator*(E a, E b) { return make_binary(BinOp::kMul, a.node(), b.node()); }
inline E operator/(E a, E b) { return make_binary(BinOp::kDiv, a.node(), b.node()); }
inline E operator-(E a) { return make_unary(UnOp::kNeg, a.node()); }
inline E operator<(E a, E b) { return make_binary(BinOp::kLt, a.node(), b.node()); }
inline E operator<=(E a, E b) { return make_binary(BinOp::kLe, a.node(), b.node()); }
inline E operator>(E a, E b) { return make_binary(BinOp::kGt, a.node(), b.node()); }
inline E operator>=(E a, E b) { return make_binary(BinOp::kGe, a.node(), b.node()); }
inline E operator==(E a, E b) { return make_binary(BinOp::kEq, a.node(), b.node()); }
inline E operator!=(E a, E b) { return make_binary(BinOp::kNe, a.node(), b.node()); }
inline E operator&&(E a, E b) { return make_binary(BinOp::kAnd, a.node(), b.node()); }
inline E operator||(E a, E b) { return make_binary(BinOp::kOr, a.node(), b.node()); }
/// Logical negation. Named (not operator!) to avoid clashing with
/// std::shared_ptr's boolean conversion in overload resolution.
inline E lnot(E a) { return make_unary(UnOp::kNot, a.node()); }
inline E pow(E a, E b) { return make_binary(BinOp::kPow, a.node(), b.node()); }
inline E mod(E a, E b) { return make_binary(BinOp::kMod, a.node(), b.node()); }

/// Library or user function call, e.g. call("ABS", {x}).
E call(std::string name, std::vector<E> args);

class ProgramBuilder;

/// A concrete element access: grid (+field) with subscripts. Convertible
/// to E (a read) and usable as an assignment target.
class Access {
 public:
  Access(GridId grid, std::string field, std::vector<ExprPtr> subscripts)
      : ir_{grid, std::move(field), std::move(subscripts)} {}

  operator E() const {  // NOLINT: implicit read is the point
    return E(make_grid_read(ir_.grid, ir_.subscripts, ir_.field));
  }
  [[nodiscard]] const GridAccess& ir() const { return ir_; }

 private:
  GridAccess ir_;
};

/// Handle to a created grid. operator() selects an element; conversion to
/// E reads the scalar (or denotes the whole grid in call arguments).
class GridHandle {
 public:
  GridHandle() = default;
  explicit GridHandle(GridId id) : id_(id) {}

  [[nodiscard]] GridId id() const { return id_; }

  /// Element access: g(), g(i), g(i, j), ...
  template <typename... Es>
  Access operator()(Es... subscripts) const {
    std::vector<ExprPtr> subs;
    (subs.push_back(E(subscripts).node()), ...);
    return Access(id_, {}, std::move(subs));
  }

  /// Struct-grid field access: g.at_field("x", i, j).
  template <typename... Es>
  Access at_field(std::string field, Es... subscripts) const {
    std::vector<ExprPtr> subs;
    (subs.push_back(E(subscripts).node()), ...);
    return Access(id_, std::move(field), std::move(subs));
  }

  /// Whole-grid / scalar read.
  operator E() const { return E(make_grid_read(id_, {})); }  // NOLINT

 private:
  GridId id_ = kInvalidGridId;
};

/// Optional grid attributes (the Figure 3 configuration screen).
struct GridOpts {
  std::string comment;
  std::string from_module;   ///< §3.1: existing FORTRAN MODULE name
  std::string common_block;  ///< §3.2: COMMON block name
  bool module_scope = false; ///< §3.3
  std::string type_parent;   ///< §3.5: existing TYPE variable name
  bool save = false;         ///< §4.2.1: FORTRAN SAVE attribute
  std::vector<Value> init;   ///< manual initial data (row-major)
  std::vector<Field> fields; ///< struct grid fields
};

/// Builds statement lists. For step bodies the target is resolved through
/// the ProgramBuilder on every call; for if arms it is a local vector that
/// is alive for the duration of the arm lambda.
class BodyBuilder {
 public:
  using BodyRef = std::function<std::vector<Stmt>&()>;

  explicit BodyBuilder(BodyRef body) : body_(std::move(body)) {}

  BodyBuilder& assign(const Access& lhs, E rhs);
  /// Convenience for scalar grids: assign(g, expr).
  BodyBuilder& assign(const GridHandle& lhs, E rhs);
  BodyBuilder& call_sub(const std::string& callee, std::vector<E> args);
  BodyBuilder& ret(E value = {});
  /// if_(cond, then_builder [, else_builder]).
  BodyBuilder& if_(E cond, const std::function<void(BodyBuilder&)>& then_fn,
                   const std::function<void(BodyBuilder&)>& else_fn = {});

 private:
  BodyRef body_;
};

/// Builds a step: its loop nest ("Index Range") and its body.
class StepBuilder : public BodyBuilder {
 public:
  StepBuilder(ProgramBuilder* pb, FunctionId fn, std::size_t step_index);

  /// Append a loop: DO index_var = begin, end [, stride]. Bounds inclusive.
  StepBuilder& foreach_(const std::string& index_var, E begin, E end,
                        E stride = {});
  /// foreach over dimension `dim` of `grid`: 0 .. extent-1.
  StepBuilder& foreach_dim(const std::string& index_var,
                           const GridHandle& grid, int dim);
  StepBuilder& comment(std::string text);

 private:
  Step& step_ref();
  ProgramBuilder* pb_;
  FunctionId fn_;
  std::size_t step_index_;
};

/// Builds one function (subprogram).
class FunctionBuilder {
 public:
  FunctionBuilder(ProgramBuilder* pb, FunctionId id) : pb_(pb), id_(id) {}

  /// Declare the next positional parameter.
  GridHandle param(const std::string& name, DataType type,
                   std::vector<E> dims = {}, GridOpts opts = {});
  /// Declare a function-local grid.
  GridHandle local(const std::string& name, DataType type,
                   std::vector<E> dims = {}, GridOpts opts = {});
  /// Begin a new step.
  StepBuilder step(const std::string& name);

  FunctionBuilder& comment(std::string text);
  [[nodiscard]] FunctionId id() const { return id_; }

 private:
  ProgramBuilder* pb_;
  FunctionId id_;
};

/// Top-level builder: owns the Program under construction.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string module_name);

  /// Create a grid in the GLAF Global Scope.
  GridHandle global(const std::string& name, DataType type,
                    std::vector<E> dims = {}, GridOpts opts = {});

  /// Begin a new function; kVoid return type produces a SUBROUTINE (§3.4).
  FunctionBuilder function(const std::string& name,
                           DataType return_type = DataType::kVoid);

  /// Validate and return the finished program (a copy; the builder remains
  /// usable).
  [[nodiscard]] StatusOr<Program> build() const;

  /// Return the IR without validation (the validator's own tests use this).
  [[nodiscard]] Program build_unchecked() const { return program_; }

  /// Access to the program under construction.
  [[nodiscard]] const Program& peek() const { return program_; }

 private:
  friend class FunctionBuilder;
  friend class StepBuilder;

  GridId add_grid(const std::string& name, DataType type, std::vector<E> dims,
                  GridOpts opts, int param_index, bool global_scope);

  Program program_;
};

}  // namespace glaf
