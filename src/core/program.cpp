#include "core/program.hpp"

#include <algorithm>
#include <set>

#include "support/strings.hpp"

namespace glaf {

const Function* Program::find_function(std::string_view name) const {
  for (const Function& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Grid* Program::find_grid(std::string_view name) const {
  for (const Grid& g : grids) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

std::function<std::string(GridId)> Program::grid_namer() const {
  return [this](GridId id) -> std::string {
    return id < grids.size() ? grids[id].name : cat("g#", id);
  };
}

namespace {

void collect_expr_grids(const ExprPtr& e, std::set<GridId>& out) {
  visit_exprs(e, [&](const Expr& node) {
    if (node.kind == Expr::Kind::kGridRead) out.insert(node.grid);
  });
}

void collect_stmt_grids(const std::vector<Stmt>& body, std::set<GridId>& out) {
  visit_stmts(body, [&](const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        if (s.lhs.grid != kInvalidGridId) out.insert(s.lhs.grid);
        for (const ExprPtr& sub : s.lhs.subscripts) collect_expr_grids(sub, out);
        collect_expr_grids(s.rhs, out);
        break;
      case Stmt::Kind::kIf:
        for (const IfArm& arm : s.arms) collect_expr_grids(arm.cond, out);
        break;  // bodies visited by visit_stmts
      case Stmt::Kind::kCallSub:
        for (const ExprPtr& a : s.args) collect_expr_grids(a, out);
        break;
      case Stmt::Kind::kReturn:
        collect_expr_grids(s.ret, out);
        break;
    }
  });
}

}  // namespace

std::vector<GridId> Program::referenced_grids(const Function& fn) const {
  std::set<GridId> ids;
  for (const Step& step : fn.steps) {
    for (const LoopSpec& loop : step.loops) {
      collect_expr_grids(loop.begin, ids);
      collect_expr_grids(loop.end, ids);
      collect_expr_grids(loop.stride, ids);
    }
    collect_stmt_grids(step.body, ids);
  }
  // Dimension extents reference grids too (size parameters).
  std::set<GridId> with_extents = ids;
  for (const GridId id : ids) {
    for (const Dim& d : grid(id).dims) collect_expr_grids(d.extent, with_extents);
  }
  for (const GridId id : fn.params) with_extents.insert(id);
  for (const GridId id : fn.locals) {
    with_extents.insert(id);
    for (const Dim& d : grid(id).dims) collect_expr_grids(d.extent, with_extents);
  }
  return {with_extents.begin(), with_extents.end()};
}

std::vector<std::string> Program::used_modules(const Function& fn) const {
  std::set<std::string> mods;
  for (const GridId id : referenced_grids(fn)) {
    const Grid& g = grid(id);
    if (g.external == ExternalKind::kModule && !g.external_module.empty()) {
      mods.insert(g.external_module);
    }
  }
  return {mods.begin(), mods.end()};
}

namespace {

std::string access_to_string(const Program& p, const GridAccess& a) {
  std::string out = p.grid(a.grid).name;
  if (!a.field.empty()) out += "." + a.field;
  for (const ExprPtr& s : a.subscripts) {
    out += "[" + expr_to_string(*s, p.grid_namer()) + "]";
  }
  return out;
}

void stmt_to_lines(const Program& p, const Stmt& s, int depth,
                   std::vector<std::string>& out) {
  const std::string pad = repeat("  ", static_cast<std::size_t>(depth));
  const auto es = [&](const ExprPtr& e) {
    return expr_to_string(*e, p.grid_namer());
  };
  switch (s.kind) {
    case Stmt::Kind::kAssign:
      out.push_back(cat(pad, access_to_string(p, s.lhs), " = ", es(s.rhs)));
      break;
    case Stmt::Kind::kIf: {
      for (std::size_t i = 0; i < s.arms.size(); ++i) {
        out.push_back(cat(pad, i == 0 ? "if " : "elseif ", es(s.arms[i].cond),
                          ":"));
        for (const Stmt& inner : s.arms[i].body) {
          stmt_to_lines(p, inner, depth + 1, out);
        }
      }
      if (!s.else_body.empty()) {
        out.push_back(pad + "else:");
        for (const Stmt& inner : s.else_body) {
          stmt_to_lines(p, inner, depth + 1, out);
        }
      }
      break;
    }
    case Stmt::Kind::kCallSub: {
      std::vector<std::string> args;
      args.reserve(s.args.size());
      for (const ExprPtr& a : s.args) args.push_back(es(a));
      out.push_back(cat(pad, "call ", s.callee, "(", join(args, ", "), ")"));
      break;
    }
    case Stmt::Kind::kReturn:
      out.push_back(s.ret ? cat(pad, "return ", es(s.ret))
                          : pad + "return");
      break;
  }
}

}  // namespace

std::set<GridId> written_grids(const Program& program) {
  std::set<GridId> written;
  for (const Function& fn : program.functions) {
    for (const Step& step : fn.steps) {
      visit_stmts(step.body, [&](const Stmt& s) {
        if (s.kind == Stmt::Kind::kAssign) written.insert(s.lhs.grid);
      });
    }
  }
  return written;
}

namespace {

std::optional<Value> fold_with(const Program& p, const Expr& e,
                               const std::set<GridId>& written) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kGridRead: {
      if (e.grid >= p.grids.size() || !e.args.empty()) return std::nullopt;
      const Grid& g = p.grid(e.grid);
      if (g.is_global && g.is_scalar() && g.external == ExternalKind::kNone &&
          !g.init_data.empty() && written.count(e.grid) == 0) {
        return g.init_data[0];
      }
      return std::nullopt;
    }
    case Expr::Kind::kBinary:
    case Expr::Kind::kUnary: {
      // Fold children first (resolving global reads at any depth), then
      // delegate the arithmetic to fold_constant on literal operands.
      Expr substituted = e;
      substituted.args.clear();
      for (const ExprPtr& arg : e.args) {
        const auto v = fold_with(p, *arg, written);
        if (!v) return std::nullopt;
        substituted.args.push_back(make_literal(*v));
      }
      return fold_constant(substituted);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<Value> fold_with_globals(const Program& program, const Expr& e) {
  return fold_with(program, e, written_grids(program));
}

std::string stmt_to_string(const Program& program, const Stmt& stmt) {
  std::vector<std::string> lines;
  stmt_to_lines(program, stmt, 0, lines);
  return join(lines, "\n");
}

std::string program_to_string(const Program& program) {
  std::vector<std::string> lines;
  lines.push_back(cat("program module=", program.module_name));
  lines.push_back("global scope:");
  for (const GridId id : program.global_grids) {
    const Grid& g = program.grid(id);
    std::string attrs;
    if (g.external == ExternalKind::kModule) {
      attrs += cat(" use=", g.external_module);
    }
    if (g.external == ExternalKind::kCommon) {
      attrs += cat(" common=/", g.common_block, "/");
    }
    if (!g.type_parent.empty()) attrs += cat(" type_parent=", g.type_parent);
    if (g.module_scope) attrs += " module_scope";
    if (g.save_attr) attrs += " save";
    lines.push_back(cat("  ", to_string(g.elem_type), " ", g.name, " rank=",
                        g.rank(), attrs));
  }
  for (const Function& fn : program.functions) {
    lines.push_back(cat("function ", fn.name, "(", fn.params.size(),
                        " params) -> ", to_string(fn.return_type)));
    for (const Step& step : fn.steps) {
      std::string loops;
      for (const LoopSpec& l : step.loops) {
        loops += cat(" foreach ", l.index_var, " in [",
                     expr_to_string(*l.begin, program.grid_namer()), ", ",
                     expr_to_string(*l.end, program.grid_namer()), "]");
      }
      lines.push_back(cat("  step ", step.name, loops));
      for (const Stmt& s : step.body) stmt_to_lines(program, s, 2, lines);
    }
  }
  return join(lines, "\n") + "\n";
}

}  // namespace glaf
