#include "core/rewrite.hpp"

namespace glaf {

ExprPtr rewrite_expr(const ExprPtr& root, const ExprRewriter& fn) {
  if (!root) return nullptr;
  bool changed = false;
  std::vector<ExprPtr> new_args;
  new_args.reserve(root->args.size());
  for (const ExprPtr& a : root->args) {
    ExprPtr r = rewrite_expr(a, fn);
    changed = changed || r != a;
    new_args.push_back(std::move(r));
  }
  ExprPtr node = root;
  if (changed) {
    auto copy = std::make_shared<Expr>(*root);
    copy->args = std::move(new_args);
    node = std::move(copy);
  }
  if (ExprPtr replacement = fn(node)) return replacement;
  return node;
}

void rewrite_stmt_exprs(Stmt& stmt, const ExprRewriter& fn) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      for (ExprPtr& sub : stmt.lhs.subscripts) sub = rewrite_expr(sub, fn);
      stmt.rhs = rewrite_expr(stmt.rhs, fn);
      break;
    case Stmt::Kind::kIf:
      for (IfArm& arm : stmt.arms) {
        arm.cond = rewrite_expr(arm.cond, fn);
        rewrite_body_exprs(arm.body, fn);
      }
      rewrite_body_exprs(stmt.else_body, fn);
      break;
    case Stmt::Kind::kCallSub:
      for (ExprPtr& a : stmt.args) a = rewrite_expr(a, fn);
      break;
    case Stmt::Kind::kReturn:
      stmt.ret = rewrite_expr(stmt.ret, fn);
      break;
  }
}

void rewrite_body_exprs(std::vector<Stmt>& body, const ExprRewriter& fn) {
  for (Stmt& s : body) rewrite_stmt_exprs(s, fn);
}

void rewrite_function_exprs(Function& fn_ir, const ExprRewriter& fn) {
  for (Step& step : fn_ir.steps) {
    for (LoopSpec& loop : step.loops) {
      loop.begin = rewrite_expr(loop.begin, fn);
      loop.end = rewrite_expr(loop.end, fn);
      loop.stride = rewrite_expr(loop.stride, fn);
    }
    rewrite_body_exprs(step.body, fn);
  }
}

void rewrite_program_exprs(Program& program, const ExprRewriter& fn) {
  for (Grid& g : program.grids) {
    for (Dim& d : g.dims) d.extent = rewrite_expr(d.extent, fn);
  }
  for (Function& f : program.functions) rewrite_function_exprs(f, fn);
}

ExprPtr substitute_index(const ExprPtr& root, const std::string& name,
                         const ExprPtr& replacement) {
  return rewrite_expr(root, [&](const ExprPtr& e) -> ExprPtr {
    if (e->kind == Expr::Kind::kIndex && e->index_name == name) {
      return replacement;
    }
    return nullptr;
  });
}

int count_statements(const std::vector<Stmt>& body) {
  int n = 0;
  for (const Stmt& s : body) {
    ++n;
    if (s.kind == Stmt::Kind::kIf) {
      for (const IfArm& arm : s.arms) n += count_statements(arm.body);
      n += count_statements(s.else_body);
    }
  }
  return n;
}

int count_statements(const Program& program) {
  int n = 0;
  for (const Function& fn : program.functions) {
    for (const Step& step : fn.steps) n += count_statements(step.body);
  }
  return n;
}

int count_expr_nodes(const ExprPtr& root) {
  if (!root) return 0;
  int n = 1;
  for (const ExprPtr& a : root->args) n += count_expr_nodes(a);
  return n;
}

int count_expr_nodes(const Program& program) {
  int n = 0;
  const ExprRewriter counter = [&n](const ExprPtr&) -> ExprPtr {
    ++n;
    return nullptr;
  };
  Program copy = program;  // rewrite_* wants mutable access; nodes shared
  rewrite_program_exprs(copy, counter);
  return n;
}

}  // namespace glaf
