#include "core/grid.hpp"

namespace glaf {

DataType Grid::field_type(const std::string& field_name) const {
  if (field_name.empty()) return elem_type;
  for (const Field& f : fields) {
    if (f.name == field_name) return f.type;
  }
  return elem_type;
}

}  // namespace glaf
