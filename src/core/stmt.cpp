#include "core/stmt.hpp"

namespace glaf {

Stmt make_assign(GridAccess lhs, ExprPtr rhs) {
  Stmt s;
  s.kind = Stmt::Kind::kAssign;
  s.lhs = std::move(lhs);
  s.rhs = std::move(rhs);
  return s;
}

Stmt make_if(ExprPtr cond, std::vector<Stmt> then_body,
             std::vector<Stmt> else_body) {
  Stmt s;
  s.kind = Stmt::Kind::kIf;
  s.arms.push_back(IfArm{std::move(cond), std::move(then_body)});
  s.else_body = std::move(else_body);
  return s;
}

Stmt make_call_stmt(std::string callee, std::vector<ExprPtr> args) {
  Stmt s;
  s.kind = Stmt::Kind::kCallSub;
  s.callee = std::move(callee);
  s.args = std::move(args);
  return s;
}

Stmt make_return(ExprPtr value) {
  Stmt s;
  s.kind = Stmt::Kind::kReturn;
  s.ret = std::move(value);
  return s;
}

void visit_stmts(const std::vector<Stmt>& body,
                 const std::function<void(const Stmt&)>& fn) {
  for (const Stmt& s : body) {
    fn(s);
    if (s.kind == Stmt::Kind::kIf) {
      for (const IfArm& arm : s.arms) visit_stmts(arm.body, fn);
      visit_stmts(s.else_body, fn);
    }
  }
}

bool contains_return(const std::vector<Stmt>& body) {
  bool found = false;
  visit_stmts(body, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kReturn) found = true;
  });
  return found;
}

}  // namespace glaf
