#pragma once
// Expression AST of the GLAF IR.
//
// Expressions appear in step formulas (right-hand sides), subscripts, loop
// bounds, conditions, and call arguments. Nodes are immutable and shared
// (std::shared_ptr<const Expr>), so subtrees can be reused freely by the
// builder DSL without copies; analyses never mutate them (side tables only).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace glaf {

/// Binary operators (arithmetic, comparison, logical).
enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kPow, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

/// Unary operators.
enum class UnOp : std::uint8_t { kNeg, kNot };

/// True for comparison / logical operators (result is Logical).
bool is_relational(BinOp op);
bool is_logical(BinOp op);

/// Source-ish spelling of an operator ("+", "<=", ".and.") in neutral form.
const char* to_string(BinOp op);
const char* to_string(UnOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An expression node.
///
/// GridRead with an empty `args` on a non-scalar grid denotes the *whole
/// grid* (used to pass arrays to subprograms and to library functions such
/// as SUM, one of the FORTRAN intrinsics this paper added support for).
struct Expr {
  enum class Kind : std::uint8_t {
    kLiteral,   ///< constant Value
    kIndex,     ///< loop index variable by name ("row", "col", ...)
    kGridRead,  ///< grid element (or whole grid when args is empty)
    kBinary,    ///< args[0] <bop> args[1]
    kUnary,     ///< <uop> args[0]
    kCall,      ///< library function or user function call
  };

  Kind kind = Kind::kLiteral;

  Value literal = std::int64_t{0};  ///< kLiteral
  std::string index_name;           ///< kIndex
  GridId grid = kInvalidGridId;     ///< kGridRead
  std::string field;                ///< kGridRead: struct-grid field ("" = none)
  BinOp bop = BinOp::kAdd;          ///< kBinary
  UnOp uop = UnOp::kNeg;            ///< kUnary
  std::string callee;               ///< kCall: library/user function name
  std::vector<ExprPtr> args;        ///< subscripts / operands / call args
};

/// --- Node constructors -------------------------------------------------

ExprPtr make_literal(Value v);
ExprPtr make_int(std::int64_t v);
ExprPtr make_real(double v);
ExprPtr make_bool(bool v);
ExprPtr make_index(std::string name);
ExprPtr make_grid_read(GridId grid, std::vector<ExprPtr> subscripts,
                       std::string field = {});
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_unary(UnOp op, ExprPtr operand);
ExprPtr make_call(std::string callee, std::vector<ExprPtr> args);

/// --- Queries ------------------------------------------------------------

/// Structural equality (literals compared exactly).
bool expr_equal(const Expr& a, const Expr& b);

/// True if the expression contains no kIndex node naming any of `names`
/// and no kGridRead (i.e., invariant w.r.t. loop indices and memory).
bool is_index_free(const Expr& e);

/// Depth-first visit of every node (parents before children).
void visit_exprs(const ExprPtr& root,
                 const std::function<void(const Expr&)>& fn);

/// Render to a neutral, readable form for diagnostics and tests,
/// e.g. "a[i][j+1] + 2.5 * ABS(b[i])". Grid names are resolved through
/// `grid_namer` when provided, otherwise printed as "g#<id>".
std::string expr_to_string(
    const Expr& e,
    const std::function<std::string(GridId)>& grid_namer = {});

/// Attempt to fold the expression to a constant (no grid reads / indices).
/// Returns std::nullopt if not a compile-time constant.
std::optional<Value> fold_constant(const Expr& e);

}  // namespace glaf
