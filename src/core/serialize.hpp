#pragma once
// Text serialization of GLAF programs.
//
// The original GLAF GPI saves and restores programs (its grid-based IR is
// "a uniform, regular internal representation"); this module provides the
// equivalent for the C++ realization: a stable, human-readable
// S-expression format that round-trips the complete IR — grids with all
// §3 integration attributes, functions, steps, loop specifications and
// statement bodies.
//
//   (glaf-program 1
//     (module sarb_kernels)
//     (grid 0 n_levels int (global) (init 60))
//     (grid 1 pressure double (dims (read 0)) (global)
//           (module-of fuliou_input))
//     (function 0 lw_spectral_integration void
//       (steps (step ls1 (loops (loop k (lit 0) (- (read 0) (lit 1))))
//                    (body (assign (lv 2 (idx k)) (lit 0.0)))))))
//
// Loaded programs are re-validated by the caller (load returns the raw
// IR; run validate()/build through the normal pipeline as needed).

#include <string>

#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf {

/// Serialize a program to the textual format. Deterministic: equal
/// programs produce equal text.
std::string serialize_program(const Program& program);

/// Parse a serialized program. Returns detailed error messages with the
/// offending token on malformed input. The result is structurally
/// complete but NOT yet validated — callers should run validate().
StatusOr<Program> parse_program(const std::string& text);

}  // namespace glaf
