#pragma once
// Fundamental vocabulary types of the GLAF internal representation (IR).
//
// GLAF (Grid-based Language and Auto-parallelization Framework) represents
// every program object — scalars, arrays, structs — as a *grid* (see
// grid.hpp). These are the scalar types grids can carry and the stable ids
// the rest of the framework uses to refer to IR entities.

#include <cstdint>
#include <string>
#include <variant>

namespace glaf {

/// Element data types. These map to the target languages as:
///   Int     -> INTEGER            / int
///   Real    -> REAL               / float
///   Double  -> REAL(KIND=8)       / double
///   Logical -> LOGICAL            / int (0/1)
///   Void    -> (subroutine return; §3.4 of the paper)
enum class DataType : std::uint8_t {
  kVoid = 0,
  kInt,
  kReal,
  kDouble,
  kLogical,
};

/// Stable GLAF-facing name of a data type ("integer", "real", ...), as the
/// GPI displays them.
const char* to_string(DataType type);

/// True for Int/Real/Double.
bool is_numeric(DataType type);

/// A compile-time constant scalar (literals and manual initial data).
using Value = std::variant<std::int64_t, double, bool>;

/// Numeric view of a Value (Logical -> 0/1).
double value_as_double(const Value& v);

/// Render a Value as source text in a neutral form ("3", "1.5", "true").
std::string value_to_string(const Value& v);

/// Identifier of a Grid within a Program. Dense, assigned by the builder.
using GridId = std::uint32_t;
/// Identifier of a Function within a Program.
using FunctionId = std::uint32_t;

inline constexpr GridId kInvalidGridId = 0xFFFFFFFFu;
inline constexpr FunctionId kInvalidFunctionId = 0xFFFFFFFFu;

}  // namespace glaf
