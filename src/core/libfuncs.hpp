#pragma once
// Registry of library (intrinsic) functions GLAF supports.
//
// "Libraries are an extensible part of GLAF ... we extended support for
// the ABS(), ALOG(), SUM(), and other functions used in FORTRAN that were
// missing in the previous versions" (paper §3.6). Each entry carries the
// per-language spelling and an interpreter implementation, so a single
// registration makes a function available to code generation for every
// target language and to direct execution.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace glaf {

/// How an entry determines its result type.
enum class LibResult : std::uint8_t {
  kSameAsArg,  ///< follows the (promoted) argument type
  kDouble,
  kInt,
};

/// One library function. `eval` operates on doubles (the interpreter's
/// numeric domain); reduction-style intrinsics over whole grids (SUM,
/// MINVAL, MAXVAL) are marked with `whole_grid` and handled specially.
struct LibFunc {
  std::string name;          ///< GLAF name, upper case (e.g. "ALOG")
  int arity;                 ///< -1 for variadic (MIN / MAX)
  LibResult result;
  std::string fortran_name;  ///< FORTRAN spelling
  std::string c_name;        ///< C spelling (math.h) or runtime helper
  bool whole_grid;           ///< argument is an entire grid (SUM, ...)
  double (*eval)(const double* args, int n);
};

/// Case-insensitive lookup; nullptr when unknown.
const LibFunc* find_lib_func(std::string_view name);

/// Every registered function (stable order), for documentation and tests.
const std::vector<LibFunc>& all_lib_funcs();

}  // namespace glaf
