#pragma once
// Structural and type validation of GLAF programs.
//
// The GPI "greatly reduces complexity and the chances for programming
// errors" (paper §2.1) by construction; with a programmatic builder the
// same guarantees are enforced by this validator, which every build() runs
// before handing the program to the back-ends. The back-ends may therefore
// assume a validated program.

#include <string>
#include <vector>

#include "core/program.hpp"

namespace glaf {

enum class Severity : std::uint8_t { kError, kWarning };

/// One finding, locating the IR entity it concerns.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string where;    ///< e.g. "function adjust2 / step Step1"
  std::string message;
};

/// Validate the whole program. Checks include:
///  - identifier validity and per-scope name uniqueness (globals cannot be
///    shadowed by function params/locals);
///  - grid attribute consistency (external grids carry no initial data and
///    live in the Global Scope; type_parent requires an existing module;
///    COMMON grids need a valid block name; init data length matches the
///    constant extent product);
///  - step structure (unique loop index names, subscript counts match grid
///    rank, index variables defined by the enclosing loops, whole-grid
///    reads only in call-argument positions);
///  - call correctness (CALL targets are void subroutines, §3.4; call
///    expressions target library functions or value-returning functions
///    with matching arity; the call graph is acyclic);
///  - return correctness (value present iff the function returns one);
///  - expression typing (conditions are Logical, assignments compatible).
std::vector<Diagnostic> validate(const Program& program);

/// True if no diagnostic is an error.
bool is_valid(const std::vector<Diagnostic>& diags);

/// Render diagnostics one per line: "error: <where>: <message>".
std::string render_diagnostics(const std::vector<Diagnostic>& diags);

}  // namespace glaf
