#pragma once
// Structural rewriting helpers over the (immutable-expression) GLAF IR.
//
// Expressions are shared immutable nodes, so "mutation" means rebuilding
// the spine above a replaced node. These helpers centralize that pattern
// for every client that transforms programs — the optimization passes,
// the fuzzing shrinker, and tests that perturb programs — instead of each
// re-implementing a recursive copy.

#include <functional>

#include "core/program.hpp"

namespace glaf {

/// Bottom-up expression rewriting: children are rewritten first, then
/// `fn` is offered the (possibly rebuilt) node. Returning null keeps the
/// node; returning a replacement substitutes it. Unchanged subtrees are
/// shared, not copied.
using ExprRewriter = std::function<ExprPtr(const ExprPtr&)>;

ExprPtr rewrite_expr(const ExprPtr& root, const ExprRewriter& fn);

/// Apply `fn` to every expression slot of a statement (rhs, subscripts,
/// conditions, call arguments, return values), recursing into if bodies.
void rewrite_stmt_exprs(Stmt& stmt, const ExprRewriter& fn);
void rewrite_body_exprs(std::vector<Stmt>& body, const ExprRewriter& fn);

/// Apply `fn` to every expression in a function: loop bounds and strides
/// of every step plus all statement expression slots.
void rewrite_function_exprs(Function& fn_ir, const ExprRewriter& fn);

/// Apply `fn` to every expression in the program, including grid
/// dimension extents.
void rewrite_program_exprs(Program& program, const ExprRewriter& fn);

/// Replace every read of index variable `name` with `replacement`
/// (used when a loop is eliminated and its index pinned to a constant).
ExprPtr substitute_index(const ExprPtr& root, const std::string& name,
                         const ExprPtr& replacement);

/// Recursive statement count (if arms and else bodies included).
int count_statements(const std::vector<Stmt>& body);
/// Total statement count across all functions and steps.
int count_statements(const Program& program);

/// Number of expression nodes in a tree (null-safe: 0 for null).
int count_expr_nodes(const ExprPtr& root);
/// Total expression node count across the whole program (loop bounds,
/// statement slots and grid extents).
int count_expr_nodes(const Program& program);

}  // namespace glaf
