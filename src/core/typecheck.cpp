#include "core/typecheck.hpp"

#include "core/libfuncs.hpp"

namespace glaf {

DataType promote(DataType a, DataType b) {
  if (a == b) return a;
  if (!is_numeric(a) || !is_numeric(b)) return DataType::kVoid;
  if (a == DataType::kDouble || b == DataType::kDouble) return DataType::kDouble;
  if (a == DataType::kReal || b == DataType::kReal) return DataType::kReal;
  return DataType::kInt;
}

DataType infer_type(const Program& program, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      if (std::holds_alternative<std::int64_t>(e.literal)) return DataType::kInt;
      if (std::holds_alternative<double>(e.literal)) return DataType::kDouble;
      return DataType::kLogical;
    case Expr::Kind::kIndex:
      return DataType::kInt;
    case Expr::Kind::kGridRead: {
      if (e.grid >= program.grids.size()) return DataType::kVoid;
      return program.grid(e.grid).field_type(e.field);
    }
    case Expr::Kind::kBinary: {
      const DataType lhs = infer_type(program, *e.args[0]);
      const DataType rhs = infer_type(program, *e.args[1]);
      if (is_relational(e.bop)) {
        return promote(lhs, rhs) == DataType::kVoid && lhs != rhs
                   ? DataType::kVoid
                   : DataType::kLogical;
      }
      if (is_logical(e.bop)) {
        return (lhs == DataType::kLogical && rhs == DataType::kLogical)
                   ? DataType::kLogical
                   : DataType::kVoid;
      }
      if (e.bop == BinOp::kDiv || e.bop == BinOp::kPow) {
        const DataType p = promote(lhs, rhs);
        return p;  // Int/Int stays Int (FORTRAN integer division)
      }
      return promote(lhs, rhs);
    }
    case Expr::Kind::kUnary: {
      const DataType t = infer_type(program, *e.args[0]);
      if (e.uop == UnOp::kNot) {
        return t == DataType::kLogical ? DataType::kLogical : DataType::kVoid;
      }
      return is_numeric(t) ? t : DataType::kVoid;
    }
    case Expr::Kind::kCall: {
      if (const LibFunc* lib = find_lib_func(e.callee)) {
        switch (lib->result) {
          case LibResult::kDouble: return DataType::kDouble;
          case LibResult::kInt: return DataType::kInt;
          case LibResult::kSameAsArg: {
            DataType t = DataType::kInt;
            for (const ExprPtr& a : e.args) {
              t = promote(t, infer_type(program, *a));
            }
            return t;
          }
        }
        return DataType::kVoid;
      }
      if (const Function* fn = program.find_function(e.callee)) {
        return fn->return_type;
      }
      return DataType::kVoid;
    }
  }
  return DataType::kVoid;
}

}  // namespace glaf
