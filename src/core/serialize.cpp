#include "core/serialize.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

#include "support/strings.hpp"

namespace glaf {
namespace {

// ===== writing ==============================================================

const char* type_name(DataType t) {
  switch (t) {
    case DataType::kVoid: return "void";
    case DataType::kInt: return "int";
    case DataType::kReal: return "real";
    case DataType::kDouble: return "double";
    case DataType::kLogical: return "logical";
  }
  return "void";
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
    case BinOp::kPow: return "pow";
    case BinOp::kMod: return "mod";
    case BinOp::kLt: return "lt";
    case BinOp::kLe: return "le";
    case BinOp::kGt: return "gt";
    case BinOp::kGe: return "ge";
    case BinOp::kEq: return "eq";
    case BinOp::kNe: return "ne";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string value_text(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return format_double(*d);
  return std::get<bool>(v) ? "true" : "false";
}

class Writer {
 public:
  explicit Writer(const Program& p) : p_(p) {}

  std::string run() {
    out_ += "(glaf-program 1\n";
    out_ += cat("  (module ", p_.module_name, ")\n");
    out_ += "  (globals";
    for (const GridId id : p_.global_grids) out_ += cat(" ", id);
    out_ += ")\n";
    for (const Grid& g : p_.grids) write_grid(g);
    for (const Function& fn : p_.functions) write_function(fn);
    out_ += ")\n";
    return out_;
  }

 private:
  void write_grid(const Grid& g) {
    out_ += cat("  (grid ", g.id, " ", g.name, " ", type_name(g.elem_type));
    if (!g.comment.empty()) out_ += cat(" (comment ", quote(g.comment), ")");
    if (!g.dims.empty()) {
      out_ += " (dims";
      for (const Dim& d : g.dims) out_ += " " + expr(d.extent);
      out_ += ")";
    }
    if (!g.fields.empty()) {
      out_ += " (fields";
      for (const Field& f : g.fields) {
        out_ += cat(" (", f.name, " ", type_name(f.type), ")");
      }
      out_ += ")";
    }
    if (g.external == ExternalKind::kModule) {
      out_ += cat(" (module-of ", g.external_module, ")");
    }
    if (g.external == ExternalKind::kCommon) {
      out_ += cat(" (common ", g.common_block, ")");
    }
    if (g.module_scope) out_ += " (module-scope)";
    if (!g.type_parent.empty()) {
      out_ += cat(" (type-parent ", g.type_parent, ")");
    }
    if (g.save_attr) out_ += " (save)";
    if (g.param_index >= 0) out_ += cat(" (param ", g.param_index, ")");
    if (!g.init_data.empty()) {
      out_ += " (init";
      for (const Value& v : g.init_data) out_ += " " + value_text(v);
      out_ += ")";
    }
    out_ += ")\n";
  }

  void write_function(const Function& fn) {
    out_ += cat("  (function ", fn.id, " ", fn.name, " ",
                type_name(fn.return_type));
    if (!fn.comment.empty()) {
      out_ += cat(" (comment ", quote(fn.comment), ")");
    }
    out_ += " (params";
    for (const GridId id : fn.params) out_ += cat(" ", id);
    out_ += ") (locals";
    for (const GridId id : fn.locals) out_ += cat(" ", id);
    out_ += ")\n    (steps\n";
    for (const Step& step : fn.steps) write_step(step);
    out_ += "    ))\n";
  }

  void write_step(const Step& step) {
    out_ += cat("      (step ", step.name);
    if (!step.comment.empty()) {
      out_ += cat(" (comment ", quote(step.comment), ")");
    }
    if (!step.loops.empty()) {
      out_ += " (loops";
      for (const LoopSpec& loop : step.loops) {
        out_ += cat(" (loop ", loop.index_var, " ", expr(loop.begin), " ",
                    expr(loop.end));
        if (loop.stride) out_ += " " + expr(loop.stride);
        out_ += ")";
      }
      out_ += ")";
    }
    if (!step.body.empty()) {
      out_ += " (body";
      for (const Stmt& s : step.body) out_ += " " + stmt(s);
      out_ += ")";
    }
    out_ += ")\n";
  }

  std::string lvalue(const GridAccess& a) const {
    std::string out = a.field.empty() ? cat("(lv ", a.grid)
                                      : cat("(lvf ", a.grid, " ", a.field);
    for (const ExprPtr& sub : a.subscripts) out += " " + expr(sub);
    return out + ")";
  }

  std::string stmt(const Stmt& s) const {
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        return cat("(assign ", lvalue(s.lhs), " ", expr(s.rhs), ")");
      case Stmt::Kind::kIf: {
        std::string out = "(if";
        for (const IfArm& arm : s.arms) {
          out += cat(" (arm ", expr(arm.cond));
          for (const Stmt& inner : arm.body) out += " " + stmt(inner);
          out += ")";
        }
        if (!s.else_body.empty()) {
          out += " (else";
          for (const Stmt& inner : s.else_body) out += " " + stmt(inner);
          out += ")";
        }
        return out + ")";
      }
      case Stmt::Kind::kCallSub: {
        std::string out = cat("(callsub ", s.callee);
        for (const ExprPtr& a : s.args) out += " " + expr(a);
        return out + ")";
      }
      case Stmt::Kind::kReturn:
        return s.ret ? cat("(return ", expr(s.ret), ")") : "(return)";
    }
    return "()";
  }

  std::string expr(const ExprPtr& e) const {
    if (!e) return "(lit 0)";
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        return cat("(lit ", value_text(e->literal), ")");
      case Expr::Kind::kIndex:
        return cat("(idx ", e->index_name, ")");
      case Expr::Kind::kGridRead: {
        std::string out = e->field.empty()
                              ? cat("(read ", e->grid)
                              : cat("(readf ", e->grid, " ", e->field);
        for (const ExprPtr& sub : e->args) out += " " + expr(sub);
        return out + ")";
      }
      case Expr::Kind::kBinary:
        return cat("(", binop_name(e->bop), " ", expr(e->args[0]), " ",
                   expr(e->args[1]), ")");
      case Expr::Kind::kUnary:
        return cat("(", e->uop == UnOp::kNeg ? "neg" : "not", " ",
                   expr(e->args[0]), ")");
      case Expr::Kind::kCall: {
        std::string out = cat("(call ", e->callee);
        for (const ExprPtr& a : e->args) out += " " + expr(a);
        return out + ")";
      }
    }
    return "(lit 0)";
  }

  const Program& p_;
  std::string out_;
};

// ===== parsing ==============================================================

struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void bail(const std::string& msg) { throw ParseError(msg); }

/// An S-expression node: atom, string literal, or list.
struct Sx {
  enum class Kind { kAtom, kString, kList };
  Kind kind = Kind::kAtom;
  std::string text;
  std::vector<Sx> items;

  [[nodiscard]] bool is_list() const { return kind == Kind::kList; }
  [[nodiscard]] const Sx& at(std::size_t i) const {
    if (!is_list() || i >= items.size()) {
      bail(cat("expected list element #", i));
    }
    return items[i];
  }
  [[nodiscard]] const std::string& atom() const {
    if (kind != Kind::kAtom) bail("expected atom");
    return text;
  }
  [[nodiscard]] const std::string& head() const { return at(0).atom(); }
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  Sx parse_all() {
    const Sx root = parse_one();
    skip_space();
    if (pos_ != text_.size()) bail("trailing content after program");
    return root;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ';') {  // line comment
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Sx parse_one() {
    skip_space();
    if (pos_ >= text_.size()) bail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Sx list;
      list.kind = Sx::Kind::kList;
      while (true) {
        skip_space();
        if (pos_ >= text_.size()) bail("unbalanced '('");
        if (text_[pos_] == ')') {
          ++pos_;
          return list;
        }
        list.items.push_back(parse_one());
      }
    }
    if (c == ')') bail("unexpected ')'");
    if (c == '"') {
      ++pos_;
      Sx s;
      s.kind = Sx::Kind::kString;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s.text += text_[pos_++];
      }
      if (pos_ >= text_.size()) bail("unterminated string");
      ++pos_;
      return s;
    }
    Sx atom;
    atom.kind = Sx::Kind::kAtom;
    while (pos_ < text_.size()) {
      const char a = text_[pos_];
      if (a == '(' || a == ')' || a == '"' ||
          std::isspace(static_cast<unsigned char>(a)) != 0) {
        break;
      }
      atom.text += a;
      ++pos_;
    }
    if (atom.text.empty()) bail("empty token");
    return atom;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

DataType parse_type(const std::string& name) {
  if (name == "void") return DataType::kVoid;
  if (name == "int") return DataType::kInt;
  if (name == "real") return DataType::kReal;
  if (name == "double") return DataType::kDouble;
  if (name == "logical") return DataType::kLogical;
  bail(cat("unknown type '", name, "'"));
}

std::int64_t parse_int(const std::string& text) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    bail(cat("expected integer, got '", text, "'"));
  }
  return v;
}

Value parse_value(const std::string& text) {
  if (text == "true") return Value{true};
  if (text == "false") return Value{false};
  if (text.find('.') != std::string::npos ||
      text.find('e') != std::string::npos ||
      text.find('E') != std::string::npos ||
      text.find("inf") != std::string::npos ||
      text.find("nan") != std::string::npos) {
    return Value{std::strtod(text.c_str(), nullptr)};
  }
  return Value{parse_int(text)};
}

BinOp parse_binop(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "add") return BinOp::kAdd;
  if (name == "sub") return BinOp::kSub;
  if (name == "mul") return BinOp::kMul;
  if (name == "div") return BinOp::kDiv;
  if (name == "pow") return BinOp::kPow;
  if (name == "mod") return BinOp::kMod;
  if (name == "lt") return BinOp::kLt;
  if (name == "le") return BinOp::kLe;
  if (name == "gt") return BinOp::kGt;
  if (name == "ge") return BinOp::kGe;
  if (name == "eq") return BinOp::kEq;
  if (name == "ne") return BinOp::kNe;
  if (name == "and") return BinOp::kAnd;
  if (name == "or") return BinOp::kOr;
  *ok = false;
  return BinOp::kAdd;
}

class Reader {
 public:
  Program run(const Sx& root) {
    if (!root.is_list() || root.items.empty() ||
        root.head() != "glaf-program") {
      bail("not a glaf-program form");
    }
    if (root.at(1).atom() != "1") bail("unsupported format version");
    Program p;
    for (std::size_t i = 2; i < root.items.size(); ++i) {
      const Sx& form = root.items[i];
      const std::string& head = form.head();
      if (head == "module") {
        p.module_name = form.at(1).atom();
      } else if (head == "globals") {
        for (std::size_t g = 1; g < form.items.size(); ++g) {
          p.global_grids.push_back(
              static_cast<GridId>(parse_int(form.at(g).atom())));
        }
      } else if (head == "grid") {
        read_grid(form, &p);
      } else if (head == "function") {
        read_function(form, &p);
      } else {
        bail(cat("unknown top-level form '", head, "'"));
      }
    }
    // Mark globals.
    for (const GridId id : p.global_grids) {
      if (id >= p.grids.size()) bail("global id out of range");
      p.grids[id].is_global = true;
    }
    return p;
  }

 private:
  void read_grid(const Sx& form, Program* p) {
    Grid g;
    g.id = static_cast<GridId>(parse_int(form.at(1).atom()));
    g.name = form.at(2).atom();
    g.elem_type = parse_type(form.at(3).atom());
    for (std::size_t i = 4; i < form.items.size(); ++i) {
      const Sx& attr = form.items[i];
      const std::string& head = attr.head();
      if (head == "comment") {
        g.comment = attr.at(1).text;
      } else if (head == "dims") {
        for (std::size_t d = 1; d < attr.items.size(); ++d) {
          g.dims.push_back(Dim{expr(attr.items[d]), {}});
        }
      } else if (head == "fields") {
        for (std::size_t f = 1; f < attr.items.size(); ++f) {
          g.fields.push_back(Field{attr.items[f].at(0).atom(),
                                   parse_type(attr.items[f].at(1).atom())});
        }
      } else if (head == "module-of") {
        g.external = ExternalKind::kModule;
        g.external_module = attr.at(1).atom();
      } else if (head == "common") {
        g.external = ExternalKind::kCommon;
        g.common_block = attr.at(1).atom();
      } else if (head == "module-scope") {
        g.module_scope = true;
      } else if (head == "type-parent") {
        g.type_parent = attr.at(1).atom();
      } else if (head == "save") {
        g.save_attr = true;
      } else if (head == "param") {
        g.param_index = static_cast<int>(parse_int(attr.at(1).atom()));
      } else if (head == "init") {
        for (std::size_t v = 1; v < attr.items.size(); ++v) {
          g.init_data.push_back(parse_value(attr.items[v].atom()));
        }
      } else {
        bail(cat("unknown grid attribute '", head, "'"));
      }
    }
    if (g.id != p->grids.size()) bail("grids must appear in id order");
    p->grids.push_back(std::move(g));
  }

  void read_function(const Sx& form, Program* p) {
    Function fn;
    fn.id = static_cast<FunctionId>(parse_int(form.at(1).atom()));
    fn.name = form.at(2).atom();
    fn.return_type = parse_type(form.at(3).atom());
    for (std::size_t i = 4; i < form.items.size(); ++i) {
      const Sx& part = form.items[i];
      const std::string& head = part.head();
      if (head == "comment") {
        fn.comment = part.at(1).text;
      } else if (head == "params") {
        for (std::size_t k = 1; k < part.items.size(); ++k) {
          fn.params.push_back(
              static_cast<GridId>(parse_int(part.at(k).atom())));
        }
      } else if (head == "locals") {
        for (std::size_t k = 1; k < part.items.size(); ++k) {
          fn.locals.push_back(
              static_cast<GridId>(parse_int(part.at(k).atom())));
        }
      } else if (head == "steps") {
        for (std::size_t k = 1; k < part.items.size(); ++k) {
          fn.steps.push_back(read_step(part.items[k]));
        }
      } else {
        bail(cat("unknown function part '", head, "'"));
      }
    }
    if (fn.id != p->functions.size()) {
      bail("functions must appear in id order");
    }
    p->functions.push_back(std::move(fn));
  }

  Step read_step(const Sx& form) {
    if (form.head() != "step") bail("expected (step ...)");
    Step step;
    step.name = form.at(1).atom();
    for (std::size_t i = 2; i < form.items.size(); ++i) {
      const Sx& part = form.items[i];
      const std::string& head = part.head();
      if (head == "comment") {
        step.comment = part.at(1).text;
      } else if (head == "loops") {
        for (std::size_t k = 1; k < part.items.size(); ++k) {
          const Sx& l = part.items[k];
          if (l.head() != "loop") bail("expected (loop ...)");
          LoopSpec loop;
          loop.index_var = l.at(1).atom();
          loop.begin = expr(l.at(2));
          loop.end = expr(l.at(3));
          if (l.items.size() > 4) loop.stride = expr(l.at(4));
          step.loops.push_back(std::move(loop));
        }
      } else if (head == "body") {
        for (std::size_t k = 1; k < part.items.size(); ++k) {
          step.body.push_back(stmt(part.items[k]));
        }
      } else {
        bail(cat("unknown step part '", head, "'"));
      }
    }
    return step;
  }

  GridAccess lvalue(const Sx& form) {
    GridAccess a;
    std::size_t subs_from = 2;
    if (form.head() == "lv") {
      a.grid = static_cast<GridId>(parse_int(form.at(1).atom()));
    } else if (form.head() == "lvf") {
      a.grid = static_cast<GridId>(parse_int(form.at(1).atom()));
      a.field = form.at(2).atom();
      subs_from = 3;
    } else {
      bail("expected (lv ...) or (lvf ...)");
    }
    for (std::size_t i = subs_from; i < form.items.size(); ++i) {
      a.subscripts.push_back(expr(form.items[i]));
    }
    return a;
  }

  Stmt stmt(const Sx& form) {
    const std::string& head = form.head();
    if (head == "assign") {
      return make_assign(lvalue(form.at(1)), expr(form.at(2)));
    }
    if (head == "if") {
      Stmt s;
      s.kind = Stmt::Kind::kIf;
      for (std::size_t i = 1; i < form.items.size(); ++i) {
        const Sx& part = form.items[i];
        if (part.head() == "arm") {
          IfArm arm;
          arm.cond = expr(part.at(1));
          for (std::size_t k = 2; k < part.items.size(); ++k) {
            arm.body.push_back(stmt(part.items[k]));
          }
          s.arms.push_back(std::move(arm));
        } else if (part.head() == "else") {
          for (std::size_t k = 1; k < part.items.size(); ++k) {
            s.else_body.push_back(stmt(part.items[k]));
          }
        } else {
          bail("expected (arm ...) or (else ...) in if");
        }
      }
      if (s.arms.empty()) bail("if without arms");
      return s;
    }
    if (head == "callsub") {
      std::vector<ExprPtr> args;
      for (std::size_t i = 2; i < form.items.size(); ++i) {
        args.push_back(expr(form.items[i]));
      }
      return make_call_stmt(form.at(1).atom(), std::move(args));
    }
    if (head == "return") {
      return form.items.size() > 1 ? make_return(expr(form.at(1)))
                                   : make_return();
    }
    bail(cat("unknown statement '", head, "'"));
  }

  ExprPtr expr(const Sx& form) {
    const std::string& head = form.head();
    if (head == "lit") return make_literal(parse_value(form.at(1).atom()));
    if (head == "idx") return make_index(form.at(1).atom());
    if (head == "read" || head == "readf") {
      const GridId id = static_cast<GridId>(parse_int(form.at(1).atom()));
      std::string field;
      std::size_t subs_from = 2;
      if (head == "readf") {
        field = form.at(2).atom();
        subs_from = 3;
      }
      std::vector<ExprPtr> subs;
      for (std::size_t i = subs_from; i < form.items.size(); ++i) {
        subs.push_back(expr(form.items[i]));
      }
      return make_grid_read(id, std::move(subs), std::move(field));
    }
    if (head == "neg") return make_unary(UnOp::kNeg, expr(form.at(1)));
    if (head == "not") return make_unary(UnOp::kNot, expr(form.at(1)));
    if (head == "call") {
      std::vector<ExprPtr> args;
      for (std::size_t i = 2; i < form.items.size(); ++i) {
        args.push_back(expr(form.items[i]));
      }
      return make_call(form.at(1).atom(), std::move(args));
    }
    bool is_bin = false;
    const BinOp op = parse_binop(head, &is_bin);
    if (is_bin) return make_binary(op, expr(form.at(1)), expr(form.at(2)));
    bail(cat("unknown expression '", head, "'"));
  }
};

}  // namespace

std::string serialize_program(const Program& program) {
  return Writer(program).run();
}

StatusOr<Program> parse_program(const std::string& text) {
  try {
    Tokenizer tokenizer(text);
    const Sx root = tokenizer.parse_all();
    Reader reader;
    return reader.run(root);
  } catch (const ParseError& err) {
    return invalid_argument(cat("parse error: ", err.what()));
  }
}

}  // namespace glaf
