#include "core/expr.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace glaf {

bool is_relational(BinOp op) {
  switch (op) {
    case BinOp::kLt: case BinOp::kLe: case BinOp::kGt:
    case BinOp::kGe: case BinOp::kEq: case BinOp::kNe:
      return true;
    default:
      return false;
  }
}

bool is_logical(BinOp op) { return op == BinOp::kAnd || op == BinOp::kOr; }

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kPow: return "**";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return ".and.";
    case BinOp::kOr: return ".or.";
  }
  return "?";
}

const char* to_string(UnOp op) {
  return op == UnOp::kNeg ? "-" : ".not.";
}

ExprPtr make_literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = v;
  return e;
}

ExprPtr make_int(std::int64_t v) { return make_literal(Value{v}); }
ExprPtr make_real(double v) { return make_literal(Value{v}); }
ExprPtr make_bool(bool v) { return make_literal(Value{v}); }

ExprPtr make_index(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kIndex;
  e->index_name = std::move(name);
  return e;
}

ExprPtr make_grid_read(GridId grid, std::vector<ExprPtr> subscripts,
                       std::string field) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kGridRead;
  e->grid = grid;
  e->args = std::move(subscripts);
  e->field = std::move(field);
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->bop = op;
  e->args = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->uop = op;
  e->args = {std::move(operand)};
  return e;
}

ExprPtr make_call(std::string callee, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCall;
  e->callee = std::move(callee);
  e->args = std::move(args);
  return e;
}

bool expr_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Expr::Kind::kLiteral:
      return a.literal == b.literal;
    case Expr::Kind::kIndex:
      return a.index_name == b.index_name;
    case Expr::Kind::kGridRead:
      if (a.grid != b.grid || a.field != b.field) return false;
      break;
    case Expr::Kind::kBinary:
      if (a.bop != b.bop) return false;
      break;
    case Expr::Kind::kUnary:
      if (a.uop != b.uop) return false;
      break;
    case Expr::Kind::kCall:
      if (a.callee != b.callee) return false;
      break;
  }
  if (a.args.size() != b.args.size()) return false;
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (!expr_equal(*a.args[i], *b.args[i])) return false;
  }
  return true;
}

bool is_index_free(const Expr& e) {
  if (e.kind == Expr::Kind::kIndex || e.kind == Expr::Kind::kGridRead) {
    return false;
  }
  for (const ExprPtr& arg : e.args) {
    if (!is_index_free(*arg)) return false;
  }
  return true;
}

void visit_exprs(const ExprPtr& root,
                 const std::function<void(const Expr&)>& fn) {
  if (!root) return;
  fn(*root);
  for (const ExprPtr& arg : root->args) visit_exprs(arg, fn);
}

std::string expr_to_string(const Expr& e,
                           const std::function<std::string(GridId)>& namer) {
  const auto recurse = [&](const ExprPtr& p) {
    return expr_to_string(*p, namer);
  };
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return value_to_string(e.literal);
    case Expr::Kind::kIndex:
      return e.index_name;
    case Expr::Kind::kGridRead: {
      std::string out = namer ? namer(e.grid) : cat("g#", e.grid);
      if (!e.field.empty()) out += "." + e.field;
      for (const ExprPtr& s : e.args) out += "[" + recurse(s) + "]";
      return out;
    }
    case Expr::Kind::kBinary:
      return cat("(", recurse(e.args[0]), " ", to_string(e.bop), " ",
                 recurse(e.args[1]), ")");
    case Expr::Kind::kUnary:
      return cat(to_string(e.uop), "(", recurse(e.args[0]), ")");
    case Expr::Kind::kCall: {
      std::vector<std::string> parts;
      parts.reserve(e.args.size());
      for (const ExprPtr& a : e.args) parts.push_back(recurse(a));
      return cat(e.callee, "(", join(parts, ", "), ")");
    }
  }
  return "?";
}

namespace {

std::optional<Value> fold_binary(BinOp op, const Value& a, const Value& b) {
  const bool both_int = std::holds_alternative<std::int64_t>(a) &&
                        std::holds_alternative<std::int64_t>(b);
  const double x = value_as_double(a);
  const double y = value_as_double(b);
  const auto num = [&](double d) -> Value {
    if (both_int && op != BinOp::kDiv && op != BinOp::kPow) {
      return Value{static_cast<std::int64_t>(d)};
    }
    if (both_int && op == BinOp::kDiv) {
      // Integer division truncates, as in both target languages.
      const std::int64_t ai = std::get<std::int64_t>(a);
      const std::int64_t bi = std::get<std::int64_t>(b);
      if (bi == 0) return Value{0.0 / 0.0};
      return Value{ai / bi};
    }
    return Value{d};
  };
  switch (op) {
    case BinOp::kAdd: return num(x + y);
    case BinOp::kSub: return num(x - y);
    case BinOp::kMul: return num(x * y);
    case BinOp::kDiv: return y == 0.0 && !both_int ? Value{x / y} : num(x / y);
    case BinOp::kPow: return Value{std::pow(x, y)};
    case BinOp::kMod:
      if (both_int) {
        const std::int64_t bi = std::get<std::int64_t>(b);
        if (bi == 0) return std::nullopt;
        return Value{std::get<std::int64_t>(a) % bi};
      }
      return Value{std::fmod(x, y)};
    case BinOp::kLt: return Value{x < y};
    case BinOp::kLe: return Value{x <= y};
    case BinOp::kGt: return Value{x > y};
    case BinOp::kGe: return Value{x >= y};
    case BinOp::kEq: return Value{x == y};
    case BinOp::kNe: return Value{x != y};
    case BinOp::kAnd: return Value{x != 0.0 && y != 0.0};
    case BinOp::kOr: return Value{x != 0.0 || y != 0.0};
  }
  return std::nullopt;
}

}  // namespace

std::optional<Value> fold_constant(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kBinary: {
      const auto a = fold_constant(*e.args[0]);
      const auto b = fold_constant(*e.args[1]);
      if (!a || !b) return std::nullopt;
      return fold_binary(e.bop, *a, *b);
    }
    case Expr::Kind::kUnary: {
      const auto a = fold_constant(*e.args[0]);
      if (!a) return std::nullopt;
      if (e.uop == UnOp::kNeg) {
        if (const auto* i = std::get_if<std::int64_t>(&*a)) return Value{-*i};
        return Value{-value_as_double(*a)};
      }
      return Value{value_as_double(*a) == 0.0};
    }
    default:
      return std::nullopt;
  }
}

}  // namespace glaf
