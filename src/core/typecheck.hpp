#pragma once
// Expression type inference over the GLAF IR. Shared by validation (type
// errors), code generation (literal suffixes, declaration kinds) and the
// interpreter (storage selection).

#include "core/program.hpp"

namespace glaf {

/// Numeric promotion lattice: Int < Real < Double. Logical only joins with
/// itself; any other mix yields kVoid (the "type error" sentinel here).
DataType promote(DataType a, DataType b);

/// Infer the type of `e` within `program`. Index variables are Int;
/// comparisons and logical operators yield Logical; library calls follow
/// the registry's result rule; user-function calls use the callee's return
/// type. Returns kVoid when the expression is ill-typed or references an
/// unknown callee.
DataType infer_type(const Program& program, const Expr& e);

}  // namespace glaf
