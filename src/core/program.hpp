#pragma once
// Steps, functions and the whole-program container of the GLAF IR.
//
// GLAF structures a program as Modules -> Functions -> Steps (paper §2.1).
// A step is a (possibly collapsed) loop nest over index variables with a
// straight-line body; interior loop nests are separate functions. The
// special Global Scope module holds grids visible program-wide.

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/stmt.hpp"
#include "core/types.hpp"

namespace glaf {

/// One loop of a step's "Index Range" (foreach) specification. Bounds are
/// inclusive, matching FORTRAN `DO i = begin, end` semantics; `stride`
/// defaults to 1 when null.
struct LoopSpec {
  std::string index_var;  ///< e.g. "row"
  ExprPtr begin;
  ExprPtr end;
  ExprPtr stride;  ///< null => 1
};

/// A step: the unit the auto-parallelization back-end analyzes and the
/// unit OpenMP directives attach to.
struct Step {
  std::string name;            ///< e.g. "Step1" or a descriptive label
  std::string comment;
  std::vector<LoopSpec> loops; ///< empty => straight-line step
  std::vector<Stmt> body;
};

/// A subprogram. `return_type == kVoid` makes it a FORTRAN SUBROUTINE
/// (generated with CALL sites, §3.4); otherwise a FUNCTION whose result is
/// produced by kReturn statements.
struct Function {
  FunctionId id = kInvalidFunctionId;
  std::string name;
  std::string comment;
  DataType return_type = DataType::kVoid;
  std::vector<GridId> params;  ///< ordered by param_index
  std::vector<GridId> locals;
  std::vector<Step> steps;
};

/// A whole GLAF program: one generated module plus the Global Scope.
class Program {
 public:
  std::string module_name;          ///< name of the generated module
  std::vector<Grid> grids;          ///< all grids, indexed by GridId
  std::vector<Function> functions;  ///< all functions, indexed by FunctionId
  std::vector<GridId> global_grids; ///< the Global Scope module's grids

  [[nodiscard]] const Grid& grid(GridId id) const { return grids.at(id); }
  [[nodiscard]] const Function& function(FunctionId id) const {
    return functions.at(id);
  }

  /// Find by name; nullptr when absent.
  [[nodiscard]] const Function* find_function(std::string_view name) const;
  [[nodiscard]] const Grid* find_grid(std::string_view name) const;

  /// Grid name lookup functor for expr_to_string.
  [[nodiscard]] std::function<std::string(GridId)> grid_namer() const;

  /// All distinct existing FORTRAN modules referenced by grids reachable
  /// from `fn` (drives `USE` generation, §3.1). Sorted, unique.
  [[nodiscard]] std::vector<std::string> used_modules(
      const Function& fn) const;

  /// Every grid id referenced (read or written) anywhere in `fn`.
  [[nodiscard]] std::vector<GridId> referenced_grids(const Function& fn) const;
};

/// Fold `e` to a constant, additionally resolving reads of scalar Global
/// Scope grids that carry initial data and are never assigned anywhere in
/// the program — the common shape of size parameters (n_levels, n_bands).
/// External grids are never folded (their values live in the legacy code).
std::optional<Value> fold_with_globals(const Program& program, const Expr& e);

/// The set of grids assigned anywhere in the program (directly; callees
/// covered because all functions are scanned).
std::set<GridId> written_grids(const Program& program);

/// Render a statement for diagnostics; indentation handled by caller.
std::string stmt_to_string(const Program& program, const Stmt& stmt);

/// Multi-line, indented dump of a whole program (debugging / golden tests).
std::string program_to_string(const Program& program);

}  // namespace glaf
