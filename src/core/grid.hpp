#pragma once
// The grid abstraction — GLAF's single data-structure concept.
//
// "All variables in GLAF (e.g., scalar variables, arrays, structs) are
// represented via the grid abstraction" (paper §2.1, Figure 1). A grid has
// a number of dimensions, an element data type (or per-field types for
// struct grids), per-dimension sizes, a caption (its name) and a comment.
//
// This header also carries the *integration attributes* this paper adds in
// §3 so generated code can interoperate with legacy FORTRAN:
//   - ExternalKind::kModule  : variable lives in an existing FORTRAN MODULE
//                              (code generation emits USE <module>);
//   - ExternalKind::kCommon  : variable lives in a COMMON block (emits
//                              COMMON /<name>/ ... grouping, §3.2);
//   - module_scope           : declared at the generated module's global
//                              scope instead of inside the subprogram (§3.3);
//   - type_parent            : the grid is an element of an existing TYPE
//                              variable, accessed as parent%element (§3.5);
//   - save_attr              : FORTRAN SAVE attribute — used to suppress
//                              per-call reallocation of temporaries in
//                              parallel regions (§4.2.1).

#include <string>
#include <vector>

#include "core/expr.hpp"
#include "core/types.hpp"

namespace glaf {

/// Where a grid's storage is declared, relative to the generated code.
enum class ExternalKind : std::uint8_t {
  kNone = 0,  ///< owned by the generated program unit
  kModule,    ///< existing (imported) FORTRAN module (§3.1)
  kCommon,    ///< FORTRAN-77 COMMON block (§3.2)
};

/// One dimension of a grid. The extent may be a constant or an expression
/// over scalar grids (e.g. a size parameter) that is evaluated on entry.
struct Dim {
  ExprPtr extent;     ///< number of elements along this dimension
  std::string title;  ///< optional dimension title shown by the GPI
};

/// One field of a struct grid (FORTRAN derived TYPE / C struct). Struct
/// grids enable the AoS-vs-SoA data layout option of the optimization
/// back-end.
struct Field {
  std::string name;
  DataType type = DataType::kDouble;
};

/// A grid: GLAF's uniform internal representation of a variable.
struct Grid {
  GridId id = kInvalidGridId;
  std::string name;     ///< the caption, e.g. "img_src"
  std::string comment;  ///< e.g. "Image before filtering"

  DataType elem_type = DataType::kDouble;
  std::vector<Dim> dims;      ///< empty => scalar grid
  std::vector<Field> fields;  ///< non-empty => struct grid

  // ---- legacy-integration attributes (§3) ----
  ExternalKind external = ExternalKind::kNone;
  std::string external_module;  ///< MODULE name when external == kModule
  std::string common_block;     ///< COMMON block name when external == kCommon
  bool module_scope = false;    ///< generated-module global scope (§3.3)
  std::string type_parent;      ///< existing TYPE variable name (§3.5), "" = none
  bool save_attr = false;       ///< FORTRAN SAVE (§4.2.1 no-reallocation)

  // ---- placement ----
  int param_index = -1;   ///< >= 0: position in the owning function's header
  bool is_global = false; ///< lives in the GLAF Global Scope module

  // ---- optional manual initial data (GPI: "Enable manual entering of
  //      initial data", Figure 3); flattened row-major ----
  std::vector<Value> init_data;

  [[nodiscard]] bool is_scalar() const { return dims.empty(); }
  [[nodiscard]] bool is_struct() const { return !fields.empty(); }
  [[nodiscard]] bool is_param() const { return param_index >= 0; }
  [[nodiscard]] std::size_t rank() const { return dims.size(); }

  /// Element type of `field_name` for struct grids; elem_type otherwise
  /// (or when the field is unknown — validation reports that separately).
  [[nodiscard]] DataType field_type(const std::string& field_name) const;
};

}  // namespace glaf
