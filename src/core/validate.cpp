#include "core/validate.hpp"

#include <map>
#include <set>

#include "core/libfuncs.hpp"
#include "core/typecheck.hpp"
#include "support/strings.hpp"

namespace glaf {
namespace {

class Validator {
 public:
  explicit Validator(const Program& p) : p_(p) {}

  std::vector<Diagnostic> run() {
    check_program_names();
    check_grids();
    for (const Function& fn : p_.functions) check_function(fn);
    check_call_graph();
    return std::move(diags_);
  }

 private:
  void error(std::string where, std::string message) {
    diags_.push_back({Severity::kError, std::move(where), std::move(message)});
  }
  void warn(std::string where, std::string message) {
    diags_.push_back(
        {Severity::kWarning, std::move(where), std::move(message)});
  }

  // ---- names and scopes ----------------------------------------------

  void check_program_names() {
    if (!is_valid_identifier(p_.module_name)) {
      error("program", cat("module name '", p_.module_name,
                           "' is not a valid identifier"));
    }
    std::set<std::string> fn_names;
    for (const Function& fn : p_.functions) {
      if (!is_valid_identifier(fn.name)) {
        error(cat("function ", fn.name), "invalid function name");
      }
      if (!fn_names.insert(to_lower(fn.name)).second) {
        error(cat("function ", fn.name), "duplicate function name");
      }
      if (find_lib_func(fn.name) != nullptr) {
        error(cat("function ", fn.name),
              "function name collides with a library function");
      }
    }
    std::set<std::string> global_names;
    for (const GridId id : p_.global_grids) {
      const Grid& g = p_.grid(id);
      if (!global_names.insert(to_lower(g.name)).second) {
        error(cat("grid ", g.name), "duplicate name in Global Scope");
      }
    }
  }

  // ---- grid attribute consistency --------------------------------------

  void check_grids() {
    for (const Grid& g : p_.grids) {
      const std::string where = cat("grid ", g.name);
      if (!is_valid_identifier(g.name)) {
        error(where, "invalid grid name");
      }
      if (g.external != ExternalKind::kNone) {
        if (!g.is_global) {
          error(where,
                "grids from existing modules or COMMON blocks must be "
                "created in the Global Scope");
        }
        if (!g.init_data.empty()) {
          error(where, "externally-owned grids cannot carry initial data");
        }
        if (g.module_scope) {
          error(where,
                "a grid cannot be both externally owned and module-scope");
        }
      }
      if (g.external == ExternalKind::kModule &&
          !is_valid_identifier(g.external_module)) {
        error(where, cat("invalid existing-module name '", g.external_module,
                         "'"));
      }
      if (g.external == ExternalKind::kCommon &&
          !is_valid_identifier(g.common_block)) {
        error(where, cat("invalid COMMON block name '", g.common_block, "'"));
      }
      if (!g.type_parent.empty()) {
        if (g.external != ExternalKind::kModule) {
          error(where,
                "TYPE-element grids must be marked as belonging to an "
                "existing module (paper §3.5)");
        } else if (!is_valid_identifier(g.type_parent)) {
          error(where, cat("invalid TYPE variable name '", g.type_parent, "'"));
        }
      }
      if (g.is_param() && (g.is_global || g.module_scope ||
                           g.external != ExternalKind::kNone)) {
        error(where, "parameter grids cannot be global/module-scope/external");
      }
      if (g.module_scope && !g.is_global) {
        error(where, "module-scope grids must be created in the Global Scope");
      }
      check_grid_fields(g, where);
      check_grid_dims(g, where);
      check_grid_init(g, where);
    }
  }

  void check_grid_fields(const Grid& g, const std::string& where) {
    std::set<std::string> names;
    for (const Field& f : g.fields) {
      if (!is_valid_identifier(f.name)) {
        error(where, cat("invalid field name '", f.name, "'"));
      }
      if (!names.insert(to_lower(f.name)).second) {
        error(where, cat("duplicate field '", f.name, "'"));
      }
      if (f.type == DataType::kVoid) {
        error(where, cat("field '", f.name, "' has void type"));
      }
    }
    if (g.elem_type == DataType::kVoid && g.fields.empty()) {
      error(where, "grid has void element type");
    }
  }

  void check_grid_dims(const Grid& g, const std::string& where) {
    for (std::size_t d = 0; d < g.dims.size(); ++d) {
      const ExprPtr& extent = g.dims[d].extent;
      if (!extent) {
        error(where, cat("dimension ", d, " has no extent expression"));
        continue;
      }
      bool bad = false;
      visit_exprs(extent, [&](const Expr& e) {
        if (e.kind == Expr::Kind::kIndex) bad = true;
        if (e.kind == Expr::Kind::kGridRead) {
          if (e.grid >= p_.grids.size() || !p_.grid(e.grid).is_scalar()) {
            bad = true;
          }
        }
      });
      if (bad) {
        error(where, cat("dimension ", d,
                         " extent must be a constant or an expression over "
                         "scalar grids"));
      }
      if (const auto c = fold_constant(*extent)) {
        if (value_as_double(*c) < 1.0) {
          error(where, cat("dimension ", d, " extent must be positive"));
        }
      }
    }
  }

  void check_grid_init(const Grid& g, const std::string& where) {
    if (g.init_data.empty()) return;
    std::int64_t product = 1;
    for (const Dim& d : g.dims) {
      const auto c = d.extent ? fold_constant(*d.extent) : std::nullopt;
      if (!c) return;  // symbolic extent: length checked at runtime
      product *= static_cast<std::int64_t>(value_as_double(*c));
    }
    if (static_cast<std::int64_t>(g.init_data.size()) != product) {
      error(where, cat("initial data has ", g.init_data.size(),
                       " values but the grid holds ", product));
    }
  }

  // ---- functions --------------------------------------------------------

  void check_function(const Function& fn) {
    const std::string where = cat("function ", fn.name);

    std::set<std::string> global_names;
    for (const GridId id : p_.global_grids) {
      global_names.insert(to_lower(p_.grid(id).name));
    }
    std::set<std::string> local_names;
    const auto check_scope_name = [&](GridId id) {
      const Grid& g = p_.grid(id);
      const std::string lower = to_lower(g.name);
      if (global_names.count(lower) != 0) {
        error(where, cat("grid '", g.name, "' shadows a Global Scope grid"));
      }
      if (!local_names.insert(lower).second) {
        error(where, cat("duplicate grid name '", g.name, "' in function"));
      }
    };
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      check_scope_name(fn.params[i]);
      const Grid& g = p_.grid(fn.params[i]);
      if (g.param_index != static_cast<int>(i)) {
        error(where, cat("parameter '", g.name, "' has inconsistent position"));
      }
    }
    for (const GridId id : fn.locals) check_scope_name(id);

    if (fn.steps.empty()) {
      warn(where, "function has no steps");
    }
    for (const Step& step : fn.steps) check_step(fn, step);

    // Return statements must match the header (§3.4): void functions are
    // emitted as SUBROUTINEs and cannot return a value.
    for (const Step& step : fn.steps) {
      visit_stmts(step.body, [&](const Stmt& s) {
        if (s.kind != Stmt::Kind::kReturn) return;
        if (fn.return_type == DataType::kVoid && s.ret) {
          error(where, "subroutine (void subprogram) returns a value");
        }
        if (fn.return_type != DataType::kVoid && !s.ret) {
          error(where, "value-returning function has a bare return");
        }
        if (s.ret) {
          const DataType t = infer_type(p_, *s.ret);
          if (promote(t, fn.return_type) == DataType::kVoid &&
              t != fn.return_type) {
            error(where, "return value type does not match function header");
          }
        }
      });
    }
  }

  void check_step(const Function& fn, const Step& step) {
    const std::string where = cat("function ", fn.name, " / step ", step.name);

    std::set<std::string> indices;
    std::set<std::string> seen_so_far;
    for (const LoopSpec& loop : step.loops) {
      if (!is_valid_identifier(loop.index_var)) {
        error(where, cat("invalid index variable '", loop.index_var, "'"));
      }
      if (!indices.insert(loop.index_var).second) {
        error(where, cat("duplicate index variable '", loop.index_var, "'"));
      }
      // Bounds may reference outer (earlier) indices only.
      for (const ExprPtr& bound : {loop.begin, loop.end, loop.stride}) {
        if (!bound) continue;
        check_expr(*bound, seen_so_far, where, /*allow_whole_grid=*/false);
      }
      seen_so_far.insert(loop.index_var);
    }
    if (step.loops.empty() && step.body.empty()) {
      warn(where, "empty step");
    }
    check_body(step.body, indices, where);
  }

  void check_body(const std::vector<Stmt>& body,
                  const std::set<std::string>& indices,
                  const std::string& where) {
    for (const Stmt& s : body) {
      switch (s.kind) {
        case Stmt::Kind::kAssign:
          check_assign(s, indices, where);
          break;
        case Stmt::Kind::kIf: {
          for (const IfArm& arm : s.arms) {
            check_expr(*arm.cond, indices, where, false);
            if (infer_type(p_, *arm.cond) != DataType::kLogical) {
              error(where, cat("condition is not logical: ",
                               expr_to_string(*arm.cond, p_.grid_namer())));
            }
            check_body(arm.body, indices, where);
          }
          check_body(s.else_body, indices, where);
          break;
        }
        case Stmt::Kind::kCallSub:
          check_call_site(s.callee, s.args, indices, where,
                          /*expects_void=*/true);
          break;
        case Stmt::Kind::kReturn:
          if (s.ret) check_expr(*s.ret, indices, where, false);
          break;
      }
    }
  }

  void check_assign(const Stmt& s, const std::set<std::string>& indices,
                    const std::string& where) {
    if (s.lhs.grid >= p_.grids.size()) {
      error(where, "assignment to unknown grid");
      return;
    }
    const Grid& g = p_.grid(s.lhs.grid);
    check_access(g, s.lhs.field, s.lhs.subscripts, indices, where,
                 /*whole_grid_ok=*/false);
    check_expr(*s.rhs, indices, where, false);

    const DataType lhs_t = g.field_type(s.lhs.field);
    const DataType rhs_t = infer_type(p_, *s.rhs);
    if (rhs_t == DataType::kVoid) {
      error(where, cat("ill-typed right-hand side: ",
                       expr_to_string(*s.rhs, p_.grid_namer())));
    } else if (lhs_t == DataType::kLogical || rhs_t == DataType::kLogical) {
      if (lhs_t != rhs_t) {
        error(where, cat("cannot assign ", to_string(rhs_t), " to ",
                         to_string(lhs_t), " grid '", g.name, "'"));
      }
    } else if (promote(lhs_t, rhs_t) == DataType::kVoid) {
      error(where, cat("incompatible assignment to grid '", g.name, "'"));
    }
  }

  void check_access(const Grid& g, const std::string& field,
                    const std::vector<ExprPtr>& subscripts,
                    const std::set<std::string>& indices,
                    const std::string& where, bool whole_grid_ok) {
    if (!field.empty()) {
      if (!g.is_struct()) {
        error(where, cat("grid '", g.name, "' has no fields (accessed '.",
                         field, "')"));
      } else {
        bool found = false;
        for (const Field& f : g.fields) found = found || f.name == field;
        if (!found) {
          error(where, cat("grid '", g.name, "' has no field '", field, "'"));
        }
      }
    }
    if (subscripts.empty() && !g.is_scalar()) {
      if (!whole_grid_ok) {
        error(where,
              cat("whole-grid reference to '", g.name,
                  "' is only allowed as a call argument or in whole-grid "
                  "library functions"));
      }
      return;
    }
    if (subscripts.size() != g.rank()) {
      error(where, cat("grid '", g.name, "' has rank ", g.rank(), " but ",
                       subscripts.size(), " subscripts were given"));
    }
    for (const ExprPtr& sub : subscripts) {
      check_expr(*sub, indices, where, false);
      const DataType t = infer_type(p_, *sub);
      if (t != DataType::kInt) {
        error(where, cat("subscript is not integer: ",
                         expr_to_string(*sub, p_.grid_namer())));
      }
    }
  }

  void check_expr(const Expr& e, const std::set<std::string>& indices,
                  const std::string& where, bool allow_whole_grid) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return;
      case Expr::Kind::kIndex:
        if (indices.count(e.index_name) == 0) {
          error(where, cat("index variable '", e.index_name,
                           "' is not defined by the step's Index Range"));
        }
        return;
      case Expr::Kind::kGridRead: {
        if (e.grid >= p_.grids.size()) {
          error(where, "reference to unknown grid");
          return;
        }
        check_access(p_.grid(e.grid), e.field, e.args, indices, where,
                     allow_whole_grid);
        return;
      }
      case Expr::Kind::kBinary:
      case Expr::Kind::kUnary:
        for (const ExprPtr& a : e.args) {
          check_expr(*a, indices, where, false);
        }
        return;
      case Expr::Kind::kCall:
        check_call_expr(e, indices, where);
        return;
    }
  }

  void check_call_expr(const Expr& e, const std::set<std::string>& indices,
                       const std::string& where) {
    if (const LibFunc* lib = find_lib_func(e.callee)) {
      if (lib->arity >= 0 &&
          static_cast<int>(e.args.size()) != lib->arity) {
        error(where, cat(lib->name, " expects ", lib->arity,
                         " argument(s), got ", e.args.size()));
      }
      if (lib->arity < 0 && e.args.size() < 2) {
        error(where, cat(lib->name, " expects at least 2 arguments"));
      }
      for (const ExprPtr& a : e.args) {
        check_expr(*a, indices, where, /*allow_whole_grid=*/lib->whole_grid);
      }
      return;
    }
    check_call_site(e.callee, e.args, indices, where, /*expects_void=*/false);
  }

  void check_call_site(const std::string& callee,
                       const std::vector<ExprPtr>& args,
                       const std::set<std::string>& indices,
                       const std::string& where, bool expects_void) {
    const Function* target = p_.find_function(callee);
    if (target == nullptr) {
      error(where, cat("call to unknown function '", callee, "'"));
      return;
    }
    if (expects_void && target->return_type != DataType::kVoid) {
      error(where, cat("CALL target '", callee,
                       "' returns a value; call it in an expression"));
    }
    if (!expects_void && target->return_type == DataType::kVoid) {
      error(where, cat("subroutine '", callee,
                       "' used in an expression (it returns no value)"));
    }
    if (args.size() != target->params.size()) {
      error(where, cat("'", callee, "' expects ", target->params.size(),
                       " argument(s), got ", args.size()));
    }
    const std::size_t n = std::min(args.size(), target->params.size());
    for (std::size_t i = 0; i < n; ++i) {
      check_expr(*args[i], indices, where, /*allow_whole_grid=*/true);
      const Grid& param = p_.grid(target->params[i]);
      // Whole-grid argument must match the parameter's rank.
      if (args[i]->kind == Expr::Kind::kGridRead && args[i]->args.empty()) {
        const Grid& arg_grid = p_.grid(args[i]->grid);
        if (!arg_grid.is_scalar() && arg_grid.rank() != param.rank()) {
          error(where, cat("argument ", i + 1, " of '", callee, "': rank ",
                           arg_grid.rank(), " grid passed to rank ",
                           param.rank(), " parameter"));
        }
      } else if (!param.is_scalar()) {
        error(where, cat("argument ", i + 1, " of '", callee,
                         "': array parameter requires a whole-grid argument"));
      }
    }
  }

  // ---- call graph --------------------------------------------------------

  void check_call_graph() {
    // FORTRAN (pre-2008 defaults) forbids implicit recursion; generated code
    // must therefore have an acyclic call graph.
    std::map<std::string, std::set<std::string>> edges;
    for (const Function& fn : p_.functions) {
      auto& out = edges[fn.name];
      for (const Step& step : fn.steps) {
        visit_stmts(step.body, [&](const Stmt& s) {
          if (s.kind == Stmt::Kind::kCallSub) out.insert(s.callee);
          const auto scan = [&](const ExprPtr& e) {
            visit_exprs(e, [&](const Expr& node) {
              if (node.kind == Expr::Kind::kCall &&
                  find_lib_func(node.callee) == nullptr) {
                out.insert(node.callee);
              }
            });
          };
          if (s.kind == Stmt::Kind::kAssign) {
            scan(s.rhs);
            for (const ExprPtr& sub : s.lhs.subscripts) scan(sub);
          }
          if (s.kind == Stmt::Kind::kIf) {
            for (const IfArm& arm : s.arms) scan(arm.cond);
          }
          if (s.kind == Stmt::Kind::kCallSub) {
            for (const ExprPtr& a : s.args) scan(a);
          }
          if (s.kind == Stmt::Kind::kReturn) scan(s.ret);
        });
      }
    }
    // Iterative DFS cycle detection.
    std::map<std::string, int> state;  // 0=unseen 1=active 2=done
    std::function<bool(const std::string&)> dfs =
        [&](const std::string& node) -> bool {
      state[node] = 1;
      for (const std::string& next : edges[node]) {
        if (edges.count(next) == 0) continue;  // unknown callee: reported above
        if (state[next] == 1) return true;
        if (state[next] == 0 && dfs(next)) return true;
      }
      state[node] = 2;
      return false;
    };
    for (const Function& fn : p_.functions) {
      if (state[fn.name] == 0 && dfs(fn.name)) {
        error(cat("function ", fn.name),
              "recursive call chain detected (generated FORTRAN subprograms "
              "must not recurse)");
        return;
      }
    }
  }

  const Program& p_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> validate(const Program& program) {
  return Validator(program).run();
}

bool is_valid(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

std::string render_diagnostics(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> lines;
  lines.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    lines.push_back(cat(d.severity == Severity::kError ? "error" : "warning",
                        ": ", d.where, ": ", d.message));
  }
  return join(lines, "\n");
}

}  // namespace glaf
