#include "core/builder.hpp"

#include "core/validate.hpp"

namespace glaf {

E call(std::string name, std::vector<E> args) {
  std::vector<ExprPtr> nodes;
  nodes.reserve(args.size());
  for (const E& a : args) nodes.push_back(a.node());
  return E(make_call(std::move(name), std::move(nodes)));
}

// ---- BodyBuilder ---------------------------------------------------------

BodyBuilder& BodyBuilder::assign(const Access& lhs, E rhs) {
  body_().push_back(make_assign(lhs.ir(), rhs.node()));
  return *this;
}

BodyBuilder& BodyBuilder::assign(const GridHandle& lhs, E rhs) {
  return assign(lhs(), std::move(rhs));
}

BodyBuilder& BodyBuilder::call_sub(const std::string& callee,
                                   std::vector<E> args) {
  std::vector<ExprPtr> nodes;
  nodes.reserve(args.size());
  for (const E& a : args) nodes.push_back(a.node());
  body_().push_back(make_call_stmt(callee, std::move(nodes)));
  return *this;
}

BodyBuilder& BodyBuilder::ret(E value) {
  body_().push_back(make_return(value.node()));
  return *this;
}

BodyBuilder& BodyBuilder::if_(E cond,
                              const std::function<void(BodyBuilder&)>& then_fn,
                              const std::function<void(BodyBuilder&)>& else_fn) {
  std::vector<Stmt> then_body;
  {
    BodyBuilder bb([&then_body]() -> std::vector<Stmt>& { return then_body; });
    if (then_fn) then_fn(bb);
  }
  std::vector<Stmt> else_body;
  if (else_fn) {
    BodyBuilder bb([&else_body]() -> std::vector<Stmt>& { return else_body; });
    else_fn(bb);
  }
  body_().push_back(
      make_if(cond.node(), std::move(then_body), std::move(else_body)));
  return *this;
}

// ---- StepBuilder ---------------------------------------------------------

StepBuilder::StepBuilder(ProgramBuilder* pb, FunctionId fn,
                         std::size_t step_index)
    : BodyBuilder([pb, fn, step_index]() -> std::vector<Stmt>& {
        return pb->program_.functions.at(fn).steps.at(step_index).body;
      }),
      pb_(pb),
      fn_(fn),
      step_index_(step_index) {}

Step& StepBuilder::step_ref() {
  return pb_->program_.functions.at(fn_).steps.at(step_index_);
}

StepBuilder& StepBuilder::foreach_(const std::string& index_var, E begin,
                                   E end, E stride) {
  LoopSpec loop;
  loop.index_var = index_var;
  loop.begin = begin.node();
  loop.end = end.node();
  loop.stride = stride.valid() ? stride.node() : nullptr;
  step_ref().loops.push_back(std::move(loop));
  return *this;
}

StepBuilder& StepBuilder::foreach_dim(const std::string& index_var,
                                      const GridHandle& grid, int dim) {
  const Grid& g = pb_->program_.grid(grid.id());
  const ExprPtr extent = g.dims.at(static_cast<std::size_t>(dim)).extent;
  return foreach_(index_var, liti(0), E(extent) - 1);
}

StepBuilder& StepBuilder::comment(std::string text) {
  step_ref().comment = std::move(text);
  return *this;
}

// ---- FunctionBuilder -----------------------------------------------------

GridHandle FunctionBuilder::param(const std::string& name, DataType type,
                                  std::vector<E> dims, GridOpts opts) {
  Function& fn = pb_->program_.functions.at(id_);
  const int position = static_cast<int>(fn.params.size());
  const GridId id = pb_->add_grid(name, type, std::move(dims), std::move(opts),
                                  position, /*global_scope=*/false);
  pb_->program_.functions.at(id_).params.push_back(id);
  return GridHandle(id);
}

GridHandle FunctionBuilder::local(const std::string& name, DataType type,
                                  std::vector<E> dims, GridOpts opts) {
  const GridId id = pb_->add_grid(name, type, std::move(dims), std::move(opts),
                                  -1, /*global_scope=*/false);
  pb_->program_.functions.at(id_).locals.push_back(id);
  return GridHandle(id);
}

StepBuilder FunctionBuilder::step(const std::string& name) {
  Function& fn = pb_->program_.functions.at(id_);
  Step s;
  s.name = name;
  fn.steps.push_back(std::move(s));
  return StepBuilder(pb_, id_, fn.steps.size() - 1);
}

FunctionBuilder& FunctionBuilder::comment(std::string text) {
  pb_->program_.functions.at(id_).comment = std::move(text);
  return *this;
}

// ---- ProgramBuilder ------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::string module_name) {
  program_.module_name = std::move(module_name);
}

GridId ProgramBuilder::add_grid(const std::string& name, DataType type,
                                std::vector<E> dims, GridOpts opts,
                                int param_index, bool global_scope) {
  Grid g;
  g.id = static_cast<GridId>(program_.grids.size());
  g.name = name;
  g.comment = std::move(opts.comment);
  g.elem_type = type;
  for (E& d : dims) {
    g.dims.push_back(Dim{d.node(), {}});
  }
  if (!opts.from_module.empty()) {
    g.external = ExternalKind::kModule;
    g.external_module = std::move(opts.from_module);
  } else if (!opts.common_block.empty()) {
    g.external = ExternalKind::kCommon;
    g.common_block = std::move(opts.common_block);
  }
  g.module_scope = opts.module_scope;
  g.type_parent = std::move(opts.type_parent);
  g.save_attr = opts.save;
  g.init_data = std::move(opts.init);
  g.fields = std::move(opts.fields);
  g.param_index = param_index;
  g.is_global = global_scope;
  program_.grids.push_back(std::move(g));
  return program_.grids.back().id;
}

GridHandle ProgramBuilder::global(const std::string& name, DataType type,
                                  std::vector<E> dims, GridOpts opts) {
  const GridId id = add_grid(name, type, std::move(dims), std::move(opts), -1,
                             /*global_scope=*/true);
  program_.global_grids.push_back(id);
  return GridHandle(id);
}

FunctionBuilder ProgramBuilder::function(const std::string& name,
                                         DataType return_type) {
  Function fn;
  fn.id = static_cast<FunctionId>(program_.functions.size());
  fn.name = name;
  fn.return_type = return_type;
  program_.functions.push_back(std::move(fn));
  return FunctionBuilder(this, program_.functions.back().id);
}

StatusOr<Program> ProgramBuilder::build() const {
  const std::vector<Diagnostic> diags = validate(program_);
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      return invalid_argument(render_diagnostics(diags));
    }
  }
  return program_;
}

}  // namespace glaf
