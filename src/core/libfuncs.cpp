#include "core/libfuncs.hpp"

#include <algorithm>
#include <cmath>

#include "support/strings.hpp"

namespace glaf {
namespace {

double ev_abs(const double* a, int) { return std::fabs(a[0]); }
double ev_log(const double* a, int) { return std::log(a[0]); }
double ev_log10(const double* a, int) { return std::log10(a[0]); }
double ev_exp(const double* a, int) { return std::exp(a[0]); }
double ev_sqrt(const double* a, int) { return std::sqrt(a[0]); }
double ev_sin(const double* a, int) { return std::sin(a[0]); }
double ev_cos(const double* a, int) { return std::cos(a[0]); }
double ev_tan(const double* a, int) { return std::tan(a[0]); }
double ev_asin(const double* a, int) { return std::asin(a[0]); }
double ev_acos(const double* a, int) { return std::acos(a[0]); }
double ev_atan(const double* a, int) { return std::atan(a[0]); }
double ev_atan2(const double* a, int) { return std::atan2(a[0], a[1]); }
double ev_pow(const double* a, int) { return std::pow(a[0], a[1]); }
double ev_mod(const double* a, int) { return std::fmod(a[0], a[1]); }
double ev_floor(const double* a, int) { return std::floor(a[0]); }
double ev_ceil(const double* a, int) { return std::ceil(a[0]); }
double ev_int(const double* a, int) { return std::trunc(a[0]); }
double ev_nint(const double* a, int) { return std::nearbyint(a[0]); }
double ev_sign(const double* a, int) {
  // FORTRAN SIGN(a, b): |a| with the sign of b.
  return a[1] >= 0.0 ? std::fabs(a[0]) : -std::fabs(a[0]);
}
double ev_sinh(const double* a, int) { return std::sinh(a[0]); }
double ev_cosh(const double* a, int) { return std::cosh(a[0]); }
double ev_tanh(const double* a, int) { return std::tanh(a[0]); }
double ev_dim(const double* a, int) {
  // FORTRAN DIM(a, b): max(a - b, 0).
  return a[0] > a[1] ? a[0] - a[1] : 0.0;
}
double ev_hypot(const double* a, int) { return std::hypot(a[0], a[1]); }
double ev_erf(const double* a, int) { return std::erf(a[0]); }
double ev_gamma(const double* a, int) { return std::tgamma(a[0]); }
// MIN/MAX fold exactly like the emitted C helpers (glaf_min/glaf_max):
// left-associative with the accumulator as the first operand. std::min
// would keep the accumulator on NaN where the C helper takes the new
// value — the differential oracle requires both backends to agree even
// on NaN operands.
double ev_min(const double* a, int n) {
  double m = a[0];
  for (int i = 1; i < n; ++i) m = m < a[i] ? m : a[i];
  return m;
}
double ev_max(const double* a, int n) {
  double m = a[0];
  for (int i = 1; i < n; ++i) m = m > a[i] ? m : a[i];
  return m;
}
// Whole-grid reductions: the interpreter feeds the flattened buffer.
double ev_sum(const double* a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += a[i];
  return s;
}
double ev_minval(const double* a, int n) { return ev_min(a, n); }
double ev_maxval(const double* a, int n) { return ev_max(a, n); }

std::vector<LibFunc> build_registry() {
  // name, arity, result, fortran, c, whole_grid, eval
  return {
      {"ABS", 1, LibResult::kSameAsArg, "ABS", "fabs", false, ev_abs},
      {"ALOG", 1, LibResult::kDouble, "ALOG", "log", false, ev_log},
      {"LOG", 1, LibResult::kDouble, "LOG", "log", false, ev_log},
      {"ALOG10", 1, LibResult::kDouble, "ALOG10", "log10", false, ev_log10},
      {"LOG10", 1, LibResult::kDouble, "LOG10", "log10", false, ev_log10},
      {"EXP", 1, LibResult::kDouble, "EXP", "exp", false, ev_exp},
      {"SQRT", 1, LibResult::kDouble, "SQRT", "sqrt", false, ev_sqrt},
      {"SIN", 1, LibResult::kDouble, "SIN", "sin", false, ev_sin},
      {"COS", 1, LibResult::kDouble, "COS", "cos", false, ev_cos},
      {"TAN", 1, LibResult::kDouble, "TAN", "tan", false, ev_tan},
      {"ASIN", 1, LibResult::kDouble, "ASIN", "asin", false, ev_asin},
      {"ACOS", 1, LibResult::kDouble, "ACOS", "acos", false, ev_acos},
      {"ATAN", 1, LibResult::kDouble, "ATAN", "atan", false, ev_atan},
      {"ATAN2", 2, LibResult::kDouble, "ATAN2", "atan2", false, ev_atan2},
      {"POW", 2, LibResult::kDouble, "", "pow", false, ev_pow},
      {"MOD", 2, LibResult::kSameAsArg, "MOD", "glaf_mod", false, ev_mod},
      {"FLOOR", 1, LibResult::kDouble, "FLOOR", "floor", false, ev_floor},
      {"CEILING", 1, LibResult::kDouble, "CEILING", "ceil", false, ev_ceil},
      {"INT", 1, LibResult::kInt, "INT", "(int)", false, ev_int},
      {"NINT", 1, LibResult::kInt, "NINT", "glaf_nint", false, ev_nint},
      {"SIGN", 2, LibResult::kSameAsArg, "SIGN", "glaf_sign", false, ev_sign},
      {"MIN", -1, LibResult::kSameAsArg, "MIN", "glaf_min", false, ev_min},
      {"MAX", -1, LibResult::kSameAsArg, "MAX", "glaf_max", false, ev_max},
      {"SINH", 1, LibResult::kDouble, "SINH", "sinh", false, ev_sinh},
      {"COSH", 1, LibResult::kDouble, "COSH", "cosh", false, ev_cosh},
      {"TANH", 1, LibResult::kDouble, "TANH", "tanh", false, ev_tanh},
      {"DIM", 2, LibResult::kSameAsArg, "DIM", "glaf_dim", false, ev_dim},
      {"HYPOT", 2, LibResult::kDouble, "HYPOT", "hypot", false, ev_hypot},
      {"ERF", 1, LibResult::kDouble, "ERF", "erf", false, ev_erf},
      {"GAMMA", 1, LibResult::kDouble, "GAMMA", "tgamma", false, ev_gamma},
      {"SUM", 1, LibResult::kSameAsArg, "SUM", "glaf_sum", true, ev_sum},
      {"MINVAL", 1, LibResult::kSameAsArg, "MINVAL", "glaf_minval", true,
       ev_minval},
      {"MAXVAL", 1, LibResult::kSameAsArg, "MAXVAL", "glaf_maxval", true,
       ev_maxval},
  };
}

}  // namespace

const std::vector<LibFunc>& all_lib_funcs() {
  static const std::vector<LibFunc> registry = build_registry();
  return registry;
}

const LibFunc* find_lib_func(std::string_view name) {
  const std::string upper = to_upper(name);
  for (const LibFunc& f : all_lib_funcs()) {
    if (f.name == upper) return &f;
  }
  return nullptr;
}

}  // namespace glaf
