#pragma once
// Statements of the GLAF IR: the "formulas" a step contains, plus the
// control constructs the GPI offers (conditions, subprogram calls, early
// return). GLAF deliberately has NO nested loops inside a step body —
// interior loop nests must be modeled as separate functions called from
// the step (paper §3.3); this restriction is enforced by validation and is
// what makes per-step dependence analysis tractable.

#include <string>
#include <vector>

#include "core/expr.hpp"
#include "core/types.hpp"

namespace glaf {

/// A write target: grid (+ optional struct field) with subscripts.
/// Empty subscripts on a non-scalar grid denote a whole-grid argument
/// position (only meaningful inside call argument lists).
struct GridAccess {
  GridId grid = kInvalidGridId;
  std::string field;
  std::vector<ExprPtr> subscripts;
};

struct Stmt;

/// One `if`/`elseif` arm: a condition plus the statements it guards.
struct IfArm {
  ExprPtr cond;
  std::vector<Stmt> body;
};

/// A statement. A tagged struct rather than a variant hierarchy: the IR is
/// small and analyses switch on `kind` directly.
struct Stmt {
  enum class Kind : std::uint8_t {
    kAssign,   ///< lhs = rhs
    kIf,       ///< arms (if / elseif...) + optional else body
    kCallSub,  ///< CALL of a void subprogram (subroutine, §3.4)
    kReturn,   ///< return (with value for non-void functions)
  };

  Kind kind = Kind::kAssign;

  // kAssign
  GridAccess lhs;
  ExprPtr rhs;

  // kIf
  std::vector<IfArm> arms;
  std::vector<Stmt> else_body;

  // kCallSub
  std::string callee;
  std::vector<ExprPtr> args;

  // kReturn
  ExprPtr ret;  ///< null for subroutines
};

/// Constructors.
Stmt make_assign(GridAccess lhs, ExprPtr rhs);
Stmt make_if(ExprPtr cond, std::vector<Stmt> then_body,
             std::vector<Stmt> else_body = {});
Stmt make_call_stmt(std::string callee, std::vector<ExprPtr> args);
Stmt make_return(ExprPtr value = nullptr);

/// Visit every statement in a body, recursing into if arms/else bodies.
void visit_stmts(const std::vector<Stmt>& body,
                 const std::function<void(const Stmt&)>& fn);

/// True if any statement in the body (recursively) is a kReturn.
bool contains_return(const std::vector<Stmt>& body);

}  // namespace glaf
