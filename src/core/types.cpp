#include "core/types.hpp"

#include "support/strings.hpp"

namespace glaf {

const char* to_string(DataType type) {
  switch (type) {
    case DataType::kVoid: return "void";
    case DataType::kInt: return "integer";
    case DataType::kReal: return "real";
    case DataType::kDouble: return "double";
    case DataType::kLogical: return "logical";
  }
  return "unknown";
}

bool is_numeric(DataType type) {
  return type == DataType::kInt || type == DataType::kReal ||
         type == DataType::kDouble;
}

double value_as_double(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return std::get<bool>(v) ? 1.0 : 0.0;
}

std::string value_to_string(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return format_double(*d);
  return std::get<bool>(v) ? "true" : "false";
}

}  // namespace glaf
