#pragma once
// Line-oriented source emitter shared by the code generators: indentation,
// comments, and FORTRAN free-form continuation wrapping.

#include <string>
#include <vector>

namespace glaf {

/// Accumulates generated source text line by line.
class CodeWriter {
 public:
  /// `continuation`: marker appended when wrapping long lines ("&" for
  /// FORTRAN free form, "" to disable wrapping as in C).
  explicit CodeWriter(std::string continuation = {}, int max_width = 100)
      : continuation_(std::move(continuation)), max_width_(max_width) {}

  void indent() { ++depth_; }
  void dedent() {
    if (depth_ > 0) --depth_;
  }

  /// Emit one (possibly wrapped) line at the current indentation.
  void line(const std::string& text);
  /// Emit a raw line with no indentation or wrapping (directives).
  void raw(const std::string& text);
  void blank();

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }

  /// Mark the current position; text_since returns everything emitted
  /// after the mark (per-function extraction for SLOC reports).
  [[nodiscard]] std::size_t mark() const { return lines_.size(); }
  [[nodiscard]] std::string text_since(std::size_t mark) const;

 private:
  std::string continuation_;
  int max_width_;
  int depth_ = 0;
  std::vector<std::string> lines_;
};

}  // namespace glaf
