#include "codegen/optpass.hpp"

#include <map>
#include <string>
#include <vector>

#include "analysis/transform.hpp"

namespace glaf {
namespace {

/// Index variables read anywhere inside one subscript expression.
void index_vars(const ExprPtr& e, std::vector<std::string>* out) {
  if (!e) return;
  visit_exprs(e, [&](const Expr& node) {
    if (node.kind == Expr::Kind::kIndex) out->push_back(node.index_name);
  });
}

/// Per-variable locality score over every subscripted access of a step:
/// +1 each time the variable drives the last (stride-1, row-major)
/// subscript, -1 each time it drives an earlier (strided) one. The loop
/// whose variable scores highest wants to be innermost.
std::map<std::string, long> locality_scores(const Step& step) {
  std::map<std::string, long> score;
  const auto tally = [&](const std::vector<ExprPtr>& subs) {
    if (subs.empty()) return;
    for (std::size_t d = 0; d < subs.size(); ++d) {
      std::vector<std::string> vars;
      index_vars(subs[d], &vars);
      for (const std::string& v : vars) {
        score[v] += d + 1 == subs.size() ? 1 : -1;
      }
    }
  };
  const auto scan_expr = [&](const ExprPtr& e) {
    if (!e) return;
    visit_exprs(e, [&](const Expr& node) {
      if (node.kind == Expr::Kind::kGridRead) tally(node.args);
    });
  };
  visit_stmts(step.body, [&](const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        tally(s.lhs.subscripts);
        for (const ExprPtr& sub : s.lhs.subscripts) scan_expr(sub);
        scan_expr(s.rhs);
        break;
      case Stmt::Kind::kIf:
        for (const IfArm& arm : s.arms) scan_expr(arm.cond);
        break;
      case Stmt::Kind::kCallSub:
        for (const ExprPtr& a : s.args) scan_expr(a);
        break;
      case Stmt::Kind::kReturn:
        scan_expr(s.ret);
        break;
    }
  });
  return score;
}

}  // namespace

OptPassResult apply_opt_loop_transforms(const Program& program) {
  OptPassResult result;
  result.program = program;
  for (const Function& fn : program.functions) {
    for (const Step& step : fn.steps) {
      if (step.loops.size() < 2) continue;
      const std::map<std::string, long> score = locality_scores(step);
      const auto score_of = [&](const LoopSpec& loop) {
        const auto it = score.find(loop.index_var);
        return it == score.end() ? 0L : it->second;
      };
      const std::size_t inner = step.loops.size() - 1;
      std::size_t best = inner;
      for (std::size_t i = 0; i < inner; ++i) {
        if (score_of(step.loops[i]) > score_of(step.loops[best])) best = i;
      }
      if (best == inner) continue;
      // Legality (rectangular fully-parallel band) is can_interchange's
      // job; an ineligible nest is simply left in program order.
      auto swapped = interchange_loops(result.program, fn.name, step.name,
                                      best, inner);
      if (!swapped.is_ok()) continue;
      result.program = std::move(swapped).value();
      ++result.interchanged_steps;
    }
  }
  return result;
}

}  // namespace glaf
