#pragma once
// Code-generation options: target language, the Table 2 directive
// policies, and the code-optimization back-end's switches (data layout,
// collapse, SAVE'd temporaries).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace glaf {

/// Target languages (paper §2.1: C, FORTRAN, OpenCL back-ends).
enum class Language : std::uint8_t { kFortran, kC, kOpenCL };

const char* to_string(Language lang);

/// Which parallel loops keep their OpenMP directives (Table 2):
///   kV0: all loops the back-end identified as parallelizable;
///   kV1: v0 minus zero-initializations and single-value broadcast loads;
///   kV2: v1 minus the remaining simple single loops;
///   kV3: v2 minus simple double loops (directives remain only on complex
///        loops — in SARB, the two large longwave_entropy_model loops).
///   kV4: v0 plus profile-guided speculation — complex steps the static
///        analysis left serial but a dependence profile observed clean
///        (analysis/speculate.hpp) run speculatively in parallel with
///        runtime band validation; misspeculation re-runs them serially.
enum class DirectivePolicy : std::uint8_t { kV0, kV1, kV2, kV3, kV4 };

const char* to_string(DirectivePolicy policy);

/// OpenMP loop schedule emitted on parallel loops.
enum class OmpSchedule : std::uint8_t {
  kDefault,  ///< no SCHEDULE clause (implementation default, i.e. static)
  kStatic,
  kDynamic,
};

const char* to_string(OmpSchedule schedule);

/// Numeric model of the emitted C: how grids and scalars are stored and
/// how arithmetic is allowed to differ from the interpreter.
enum class NumericModel : std::uint8_t {
  /// Faithful typed C (long/float/double) of the standalone back-end.
  kTyped,
  /// Interpreter-exact all-double model: every grid and scalar is a C
  /// double with explicit trunc() on INTEGER stores, trunc(a/b) for
  /// integer division and fmod for MOD, so the compiled kernel is
  /// bit-identical to the tree-walk/plan engines.
  kInterp,
  /// Optimized tier: native storage widths like kTyped, plus
  /// restrict-qualified storage pointers and applied S4 loop
  /// interchange so the innermost loop walks stride-1 memory. Compared
  /// against the interpreter under ulp budgets, not bitwise.
  kOpt,
};

const char* to_string(NumericModel model);

/// All options consumed by the generators.
struct CodegenOptions {
  Language language = Language::kFortran;

  /// SCHEDULE clause on parallel loops; kDynamic balances uneven bodies
  /// (e.g. the data-dependent branches of the complex loops).
  OmpSchedule schedule = OmpSchedule::kDefault;
  int schedule_chunk = 0;  ///< 0 = unspecified

  /// Master OpenMP switch; false produces the "GLAF serial" variant.
  bool enable_openmp = true;
  DirectivePolicy policy = DirectivePolicy::kV0;

  /// Emit COLLAPSE(n) on perfectly-nested parallel loops, up to this depth
  /// (GLAF generates COLLAPSE(2), paper §4.1.2).
  bool emit_collapse = true;
  int max_collapse = 2;

  /// Structure-of-arrays layout for struct grids (code-optimization
  /// back-end's data-layout option); false = array-of-structures.
  bool soa_layout = false;

  /// Apply the FORTRAN SAVE attribute to every function-local array to
  /// suppress per-call reallocation (§4.2.1 "no reallocation" option).
  bool save_temporaries = false;

  /// Emit explanatory comments (grid comments, directive rationale).
  bool emit_comments = true;

  /// Host-driven parallel emission (the parallel JIT engine's mode):
  /// bit-exact parallelizable steps (StepVerdict::bit_exact) that keep
  /// their directive under `policy` are emitted as static range functions
  /// over a banded iteration space, dispatched through an exported
  /// `glaf_set_pfor` callback so the host's thread pool — not an OpenMP
  /// runtime — partitions the work. Per-thread reduction scratch is
  /// combined in rank order, keeping results identical to the serial
  /// kernel. Steps that are not bit-exact run serially inside the unit.
  bool host_parallel = false;

  /// Fuse maximal runs of adjacent range-dispatched steps that share a
  /// partition dimension and have no cross-step carried dependence
  /// (analysis/fuse.hpp) into a single region entry point, so a function
  /// call pays one fork/join per region instead of per step. Only
  /// meaningful with host_parallel.
  bool fuse_regions = true;

  /// Numeric model of the emitted C. kTyped is the standalone
  /// back-end's faithful typed C; kInterp is the JIT's bit-identical
  /// all-double model; kOpt is the JIT's fast tier (typed storage,
  /// restrict pointers, applied loop interchange).
  NumericModel numeric_model = NumericModel::kTyped;
};

/// One host-dispatched parallel region in the emitted unit (a single
/// ranged step, or a fused run of adjacent ranged steps).
struct ParallelRegion {
  std::string function;
  std::size_t first_step = 0;
  std::size_t step_count = 1;
  /// Static work estimate baked into the region's dispatch guard
  /// (analysis/plan_profit.hpp units per partitioned iteration).
  std::int64_t units_per_iter = 1;
};

/// Result of generating a whole program.
struct GeneratedCode {
  std::string source;  ///< complete translation unit
  /// Per-subprogram source excerpt (used by the Table 1 SLOC experiment).
  std::map<std::string, std::string> per_function;
  /// Host-parallel regions, in emission order (host_parallel only).
  std::vector<ParallelRegion> regions;
};

}  // namespace glaf
