#pragma once
// C code generation back-end (paper §2.1: GLAF generates C and FORTRAN,
// later OpenCL). Mirrors the FORTRAN back-end's §3 integration features in
// their C equivalents:
//   - existing-module variables -> extern declarations with provenance
//     comments (the legacy objects provide the storage);
//   - COMMON blocks             -> the gfortran interop convention of an
//     extern struct named <block>_;
//   - module-scope variables    -> static file-scope definitions;
//   - subroutines               -> void functions;
//   - TYPE elements             -> parent.element member access;
//   - library functions         -> math.h spellings plus a small set of
//     emitted glaf_* helpers (MIN/MAX/SUM/...).
// OpenMP is emitted as #pragma omp with the same clause set as FORTRAN.

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"
#include "core/program.hpp"

namespace glaf {

/// Generate a complete C translation unit for `program`.
GeneratedCode generate_c(const Program& program,
                         const ProgramAnalysis& analysis,
                         const CodegenOptions& options = {});

}  // namespace glaf
