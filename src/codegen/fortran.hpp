#pragma once
// FORTRAN-90 code generation with the legacy-integration features of §3:
//
//   §3.1 existing-module variables  -> USE <module> statements, no re-decl
//   §3.2 COMMON block variables     -> grouped COMMON /<name>/ declarations
//   §3.3 module-scope variables     -> declared in the generated MODULE
//   §3.4 subroutines                -> SUBROUTINE/CALL for void subprograms
//   §3.5 elements of TYPE variables -> parent%element access
//   §3.6 library functions          -> FORTRAN intrinsic spellings
//
// plus OpenMP directive emission driven by the auto-parallelization
// verdicts and the Table 2 directive policies, the COLLAPSE(2) clause,
// PRIVATE/FIRSTPRIVATE/REDUCTION clauses, ATOMIC updates, CRITICAL
// early-return sections, and the SAVE / guarded-ALLOCATE no-reallocation
// pattern of §4.2.1.

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"
#include "core/program.hpp"

namespace glaf {

/// Generate a complete FORTRAN module for `program`. `analysis` must have
/// been computed for the same program. Options other than `language` are
/// honoured; `language` is ignored (this is the FORTRAN back-end).
GeneratedCode generate_fortran(const Program& program,
                               const ProgramAnalysis& analysis,
                               const CodegenOptions& options = {});

}  // namespace glaf
