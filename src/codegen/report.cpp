#include "codegen/report.hpp"

#include "codegen/directive_policy.hpp"
#include "support/strings.hpp"

namespace glaf {

std::string parallelization_report(const Program& program,
                                   const ProgramAnalysis& analysis) {
  std::string out = cat("# Parallelization report: module ",
                        program.module_name, "\n\n");

  int parallel = 0;
  int serial = 0;
  int straight = 0;
  for (const Function& fn : program.functions) {
    const auto it = analysis.verdicts.find(fn.id);
    if (it == analysis.verdicts.end()) continue;
    for (const StepVerdict& v : it->second) {
      if (!v.has_loop) {
        ++straight;
      } else if (v.parallelizable) {
        ++parallel;
      } else {
        ++serial;
      }
    }
  }
  out += cat("- ", parallel, " parallelizable loop(s), ", serial,
             " serial loop(s), ", straight, " straight-line step(s)\n\n");

  for (const Function& fn : program.functions) {
    const auto it = analysis.verdicts.find(fn.id);
    if (it == analysis.verdicts.end()) continue;
    out += cat("## ", fn.return_type == DataType::kVoid ? "subroutine "
                                                        : "function ",
               fn.name, "\n\n");
    out += "| step | class | iterations | verdict | kept under |\n";
    out += "|---|---|---:|---|---|\n";
    for (std::size_t s = 0; s < fn.steps.size(); ++s) {
      const StepVerdict& v = it->second.at(s);
      std::string kept;
      for (const DirectivePolicy p :
           {DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
            DirectivePolicy::kV3}) {
        if (keep_directive(p, v)) kept += cat(to_string(p), " ");
      }
      if (kept.empty()) kept = "-";
      out += cat("| ", fn.steps[s].name, " | ", to_string(v.loop_class),
                 " | ",
                 v.trip_count >= 0 ? std::to_string(v.trip_count) : "?",
                 " | ", verdict_to_string(program, v), " | ", trim(kept),
                 " |\n");
    }
    out += "\n";
    // Notes (the reasoning trail), one bullet per note.
    for (std::size_t s = 0; s < fn.steps.size(); ++s) {
      const StepVerdict& v = it->second.at(s);
      for (const std::string& note : v.notes) {
        out += cat("- `", fn.steps[s].name, "`: ", note, "\n");
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace glaf
