#pragma once
// OpenCL code generation back-end (the prior-work extension of GLAF,
// Krommydas et al. ASAP'16, kept for completeness). Parallelizable steps
// become __kernel functions whose outer (collapsed) loops are mapped onto
// the NDRange; serial steps and straight-line code stay in a host-side C
// driver emitted alongside the kernels.

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"
#include "core/program.hpp"

namespace glaf {

/// Result of OpenCL generation: kernel source plus a host driver skeleton.
struct OpenClCode {
  std::string kernels;  ///< *.cl translation unit
  std::string host;     ///< host-side setup/launch skeleton (C)
  /// kernel name per (function, step) that was offloaded
  std::map<std::string, std::vector<std::string>> kernels_by_function;
};

OpenClCode generate_opencl(const Program& program,
                           const ProgramAnalysis& analysis,
                           const CodegenOptions& options = {});

}  // namespace glaf
