#pragma once
// The Table 2 directive-removal policies: given a step's analysis verdict
// and its loop class, decide whether the generated code keeps the OpenMP
// directive under a given policy.

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"

namespace glaf {

/// True when a parallelizable step keeps its OMP directive under `policy`.
/// Non-parallelizable steps never get directives.
bool keep_directive(DirectivePolicy policy, const StepVerdict& verdict);

}  // namespace glaf
