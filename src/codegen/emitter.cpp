#include "codegen/emitter.hpp"

#include "support/strings.hpp"

namespace glaf {

void CodeWriter::line(const std::string& text) {
  const std::string pad = repeat("  ", static_cast<std::size_t>(depth_));
  std::string full = pad + text;
  if (continuation_.empty() ||
      static_cast<int>(full.size()) <= max_width_) {
    lines_.push_back(std::move(full));
    return;
  }
  // Wrap at the last blank before the width limit; continuation lines are
  // indented two levels deeper.
  const std::string cont_pad = pad + "    ";
  std::string rest = std::move(full);
  bool first = true;
  while (static_cast<int>(rest.size()) > max_width_) {
    std::size_t cut = rest.rfind(' ', static_cast<std::size_t>(max_width_) -
                                          continuation_.size() - 1);
    const std::size_t min_cut = first ? pad.size() + 1 : cont_pad.size() + 1;
    if (cut == std::string::npos || cut <= min_cut) {
      cut = static_cast<std::size_t>(max_width_) - continuation_.size() - 1;
    }
    lines_.push_back(rest.substr(0, cut) + " " + continuation_);
    rest = cont_pad + rest.substr(cut + (rest[cut] == ' ' ? 1 : 0));
    first = false;
  }
  lines_.push_back(std::move(rest));
}

void CodeWriter::raw(const std::string& text) { lines_.push_back(text); }

void CodeWriter::blank() { lines_.emplace_back(); }

std::string CodeWriter::str() const { return join(lines_, "\n") + "\n"; }

std::string CodeWriter::text_since(std::size_t mark) const {
  std::vector<std::string> tail(lines_.begin() +
                                    static_cast<std::ptrdiff_t>(mark),
                                lines_.end());
  return join(tail, "\n") + "\n";
}

}  // namespace glaf
