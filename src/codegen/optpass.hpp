#pragma once
// S4 loop transforms applied ahead of the opt emit tier: legality-checked
// loop interchange (analysis/transform.hpp) driven by a stride-1 locality
// heuristic, so the innermost loop of each nest walks contiguous memory
// and the C compiler's vectorizer has something to work with.

#include "analysis/parallelize.hpp"
#include "core/program.hpp"

namespace glaf {

struct OptPassResult {
  Program program;
  int interchanged_steps = 0;  ///< steps whose loop order changed
};

/// Reorder each step's parallel loop band so the loop whose index appears
/// most often in the last (fastest-varying, row-major) subscript position
/// runs innermost. Every swap goes through `can_interchange`, so only
/// provably independent rectangular bands are touched; everything else is
/// returned unchanged.
OptPassResult apply_opt_loop_transforms(const Program& program);

}  // namespace glaf
