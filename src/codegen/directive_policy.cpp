#include "codegen/directive_policy.hpp"

namespace glaf {

const char* to_string(Language lang) {
  switch (lang) {
    case Language::kFortran: return "FORTRAN";
    case Language::kC: return "C";
    case Language::kOpenCL: return "OpenCL";
  }
  return "?";
}

const char* to_string(OmpSchedule schedule) {
  switch (schedule) {
    case OmpSchedule::kDefault: return "default";
    case OmpSchedule::kStatic: return "static";
    case OmpSchedule::kDynamic: return "dynamic";
  }
  return "?";
}

const char* to_string(NumericModel model) {
  switch (model) {
    case NumericModel::kTyped: return "typed";
    case NumericModel::kInterp: return "interp";
    case NumericModel::kOpt: return "opt";
  }
  return "?";
}

const char* to_string(DirectivePolicy policy) {
  switch (policy) {
    case DirectivePolicy::kV0: return "v0";
    case DirectivePolicy::kV1: return "v1";
    case DirectivePolicy::kV2: return "v2";
    case DirectivePolicy::kV3: return "v3";
    case DirectivePolicy::kV4: return "v4";
  }
  return "?";
}

bool keep_directive(DirectivePolicy policy, const StepVerdict& verdict) {
  if (!verdict.has_loop || !verdict.parallelizable) return false;
  // v4 keeps every statically-parallelizable directive (v0 behavior);
  // its new ground — speculating on profile-clean serial steps — is
  // decided from StepVerdict::speculative by the engines, not here.
  if (policy == DirectivePolicy::kV4) policy = DirectivePolicy::kV0;
  switch (verdict.loop_class) {
    case LoopClass::kStraightLine:
      return false;
    case LoopClass::kInitZero:
    case LoopClass::kBroadcast:
      // Removed from v1 on: the compiler beats threads here (memset, SIMD
      // loads), paper §4.1.2.
      return policy == DirectivePolicy::kV0;
    case LoopClass::kSimpleSingle:
      // Removed from v2 on: SIMD or unrolling wins.
      return policy == DirectivePolicy::kV0 ||
             policy == DirectivePolicy::kV1;
    case LoopClass::kSimpleDouble:
      // Removed in v3: the compiler auto-parallelizes/vectorizes these.
      return policy != DirectivePolicy::kV3;
    case LoopClass::kComplex:
      // Directives always kept: the compiler fails to parallelize these
      // (the two large longwave_entropy_model loops).
      return true;
  }
  return false;
}

}  // namespace glaf
