#pragma once
// Human-readable parallelization reports (lives in codegen because it
// references the Table 2 directive policies).
//
// The paper highlights that GLAF "drastically eased the search of the
// optimization space, as well as identifying the 219 variables that
// needed to be declared as OpenMP private" (§4.2.2) — i.e., the analysis
// artifacts themselves are a user-facing product. This module renders
// them: per step, the loop class, trip count, verdict and every clause,
// plus a summary of what each Table 2 policy would keep.

#include <string>

#include "analysis/parallelize.hpp"

namespace glaf {

/// Render a Markdown report of the whole program's analysis.
std::string parallelization_report(const Program& program,
                                   const ProgramAnalysis& analysis);

}  // namespace glaf
