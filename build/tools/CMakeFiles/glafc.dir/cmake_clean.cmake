file(REMOVE_RECURSE
  "CMakeFiles/glafc.dir/glafc.cpp.o"
  "CMakeFiles/glafc.dir/glafc.cpp.o.d"
  "glafc"
  "glafc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glafc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
