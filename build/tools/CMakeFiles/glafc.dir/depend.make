# Empty dependencies file for glafc.
# This may be replaced when dependencies are built.
