file(REMOVE_RECURSE
  "CMakeFiles/codegen_test.dir/codegen/c_compile_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/c_compile_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/c_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/c_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/differential_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/differential_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/emitter_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/emitter_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/fortran_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/fortran_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/golden_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/golden_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/layout_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/layout_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/opencl_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/opencl_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/policy_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/policy_test.cpp.o.d"
  "CMakeFiles/codegen_test.dir/codegen/report_test.cpp.o"
  "CMakeFiles/codegen_test.dir/codegen/report_test.cpp.o.d"
  "codegen_test"
  "codegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
