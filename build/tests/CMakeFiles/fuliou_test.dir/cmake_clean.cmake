file(REMOVE_RECURSE
  "CMakeFiles/fuliou_test.dir/fuliou/sarb_test.cpp.o"
  "CMakeFiles/fuliou_test.dir/fuliou/sarb_test.cpp.o.d"
  "CMakeFiles/fuliou_test.dir/fuliou/sweep_test.cpp.o"
  "CMakeFiles/fuliou_test.dir/fuliou/sweep_test.cpp.o.d"
  "CMakeFiles/fuliou_test.dir/fuliou/window_test.cpp.o"
  "CMakeFiles/fuliou_test.dir/fuliou/window_test.cpp.o.d"
  "CMakeFiles/fuliou_test.dir/fuliou/zones_test.cpp.o"
  "CMakeFiles/fuliou_test.dir/fuliou/zones_test.cpp.o.d"
  "fuliou_test"
  "fuliou_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuliou_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
