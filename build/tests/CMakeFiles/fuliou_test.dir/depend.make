# Empty dependencies file for fuliou_test.
# This may be replaced when dependencies are built.
