file(REMOVE_RECURSE
  "CMakeFiles/interp_test.dir/interp/failure_test.cpp.o"
  "CMakeFiles/interp_test.dir/interp/failure_test.cpp.o.d"
  "CMakeFiles/interp_test.dir/interp/machine_test.cpp.o"
  "CMakeFiles/interp_test.dir/interp/machine_test.cpp.o.d"
  "CMakeFiles/interp_test.dir/interp/parallel_test.cpp.o"
  "CMakeFiles/interp_test.dir/interp/parallel_test.cpp.o.d"
  "CMakeFiles/interp_test.dir/interp/trace_test.cpp.o"
  "CMakeFiles/interp_test.dir/interp/trace_test.cpp.o.d"
  "interp_test"
  "interp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
