file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/support/cli_test.cpp.o"
  "CMakeFiles/support_test.dir/support/cli_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/sloc_test.cpp.o"
  "CMakeFiles/support_test.dir/support/sloc_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/strings_test.cpp.o"
  "CMakeFiles/support_test.dir/support/strings_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/table_test.cpp.o"
  "CMakeFiles/support_test.dir/support/table_test.cpp.o.d"
  "support_test"
  "support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
