# Empty dependencies file for fun3d_test.
# This may be replaced when dependencies are built.
