file(REMOVE_RECURSE
  "CMakeFiles/fun3d_test.dir/fun3d/c_compile_full_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/c_compile_full_test.cpp.o.d"
  "CMakeFiles/fun3d_test.dir/fun3d/c_compile_fun3d_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/c_compile_fun3d_test.cpp.o.d"
  "CMakeFiles/fun3d_test.dir/fun3d/glaf_full_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/glaf_full_test.cpp.o.d"
  "CMakeFiles/fun3d_test.dir/fun3d/glaf_fun3d_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/glaf_fun3d_test.cpp.o.d"
  "CMakeFiles/fun3d_test.dir/fun3d/mesh_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/mesh_test.cpp.o.d"
  "CMakeFiles/fun3d_test.dir/fun3d/recon_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/recon_test.cpp.o.d"
  "CMakeFiles/fun3d_test.dir/fun3d/sweep_test.cpp.o"
  "CMakeFiles/fun3d_test.dir/fun3d/sweep_test.cpp.o.d"
  "fun3d_test"
  "fun3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
