file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/access_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/access_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/affine_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/affine_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/dependence_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/dependence_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/fold_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/fold_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/inline_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/inline_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/loopclass_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/loopclass_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/parallelize_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/parallelize_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/reduction_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/reduction_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/transform_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/transform_test.cpp.o.d"
  "analysis_test"
  "analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
