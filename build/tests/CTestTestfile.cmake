# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;add_glaf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialize_test "/root/repo/build/tests/serialize_test")
set_tests_properties(serialize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;27;add_glaf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;35;add_glaf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codegen_test "/root/repo/build/tests/codegen_test")
set_tests_properties(codegen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;46;add_glaf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interp_test "/root/repo/build/tests/interp_test")
set_tests_properties(interp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;58;add_glaf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;64;add_glaf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuliou_test "/root/repo/build/tests/fuliou_test")
set_tests_properties(fuliou_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fun3d_test "/root/repo/build/tests/fun3d_test")
set_tests_properties(fun3d_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;88;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(perfmodel_test "/root/repo/build/tests/perfmodel_test")
set_tests_properties(perfmodel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
