# Empty dependencies file for glaf_interp.
# This may be replaced when dependencies are built.
