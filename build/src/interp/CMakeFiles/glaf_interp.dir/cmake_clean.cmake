file(REMOVE_RECURSE
  "CMakeFiles/glaf_interp.dir/machine.cpp.o"
  "CMakeFiles/glaf_interp.dir/machine.cpp.o.d"
  "libglaf_interp.a"
  "libglaf_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
