file(REMOVE_RECURSE
  "libglaf_interp.a"
)
