# Empty dependencies file for glaf_support.
# This may be replaced when dependencies are built.
