file(REMOVE_RECURSE
  "libglaf_support.a"
)
