file(REMOVE_RECURSE
  "CMakeFiles/glaf_support.dir/cli.cpp.o"
  "CMakeFiles/glaf_support.dir/cli.cpp.o.d"
  "CMakeFiles/glaf_support.dir/sloc.cpp.o"
  "CMakeFiles/glaf_support.dir/sloc.cpp.o.d"
  "CMakeFiles/glaf_support.dir/status.cpp.o"
  "CMakeFiles/glaf_support.dir/status.cpp.o.d"
  "CMakeFiles/glaf_support.dir/strings.cpp.o"
  "CMakeFiles/glaf_support.dir/strings.cpp.o.d"
  "CMakeFiles/glaf_support.dir/table.cpp.o"
  "CMakeFiles/glaf_support.dir/table.cpp.o.d"
  "libglaf_support.a"
  "libglaf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
