# Empty compiler generated dependencies file for glaf_analysis.
# This may be replaced when dependencies are built.
