
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/access.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/access.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/access.cpp.o.d"
  "/root/repo/src/analysis/affine.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/affine.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/affine.cpp.o.d"
  "/root/repo/src/analysis/dependence.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/dependence.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/dependence.cpp.o.d"
  "/root/repo/src/analysis/loopclass.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/loopclass.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/loopclass.cpp.o.d"
  "/root/repo/src/analysis/parallelize.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/parallelize.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/parallelize.cpp.o.d"
  "/root/repo/src/analysis/reduction.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/reduction.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/reduction.cpp.o.d"
  "/root/repo/src/analysis/transform.cpp" "src/analysis/CMakeFiles/glaf_analysis.dir/transform.cpp.o" "gcc" "src/analysis/CMakeFiles/glaf_analysis.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/glaf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/glaf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
