file(REMOVE_RECURSE
  "CMakeFiles/glaf_analysis.dir/access.cpp.o"
  "CMakeFiles/glaf_analysis.dir/access.cpp.o.d"
  "CMakeFiles/glaf_analysis.dir/affine.cpp.o"
  "CMakeFiles/glaf_analysis.dir/affine.cpp.o.d"
  "CMakeFiles/glaf_analysis.dir/dependence.cpp.o"
  "CMakeFiles/glaf_analysis.dir/dependence.cpp.o.d"
  "CMakeFiles/glaf_analysis.dir/loopclass.cpp.o"
  "CMakeFiles/glaf_analysis.dir/loopclass.cpp.o.d"
  "CMakeFiles/glaf_analysis.dir/parallelize.cpp.o"
  "CMakeFiles/glaf_analysis.dir/parallelize.cpp.o.d"
  "CMakeFiles/glaf_analysis.dir/reduction.cpp.o"
  "CMakeFiles/glaf_analysis.dir/reduction.cpp.o.d"
  "CMakeFiles/glaf_analysis.dir/transform.cpp.o"
  "CMakeFiles/glaf_analysis.dir/transform.cpp.o.d"
  "libglaf_analysis.a"
  "libglaf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
