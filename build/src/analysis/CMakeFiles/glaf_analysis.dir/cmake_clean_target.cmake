file(REMOVE_RECURSE
  "libglaf_analysis.a"
)
