# Empty dependencies file for glaf_codegen.
# This may be replaced when dependencies are built.
