
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/c.cpp" "src/codegen/CMakeFiles/glaf_codegen.dir/c.cpp.o" "gcc" "src/codegen/CMakeFiles/glaf_codegen.dir/c.cpp.o.d"
  "/root/repo/src/codegen/directive_policy.cpp" "src/codegen/CMakeFiles/glaf_codegen.dir/directive_policy.cpp.o" "gcc" "src/codegen/CMakeFiles/glaf_codegen.dir/directive_policy.cpp.o.d"
  "/root/repo/src/codegen/emitter.cpp" "src/codegen/CMakeFiles/glaf_codegen.dir/emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/glaf_codegen.dir/emitter.cpp.o.d"
  "/root/repo/src/codegen/fortran.cpp" "src/codegen/CMakeFiles/glaf_codegen.dir/fortran.cpp.o" "gcc" "src/codegen/CMakeFiles/glaf_codegen.dir/fortran.cpp.o.d"
  "/root/repo/src/codegen/opencl.cpp" "src/codegen/CMakeFiles/glaf_codegen.dir/opencl.cpp.o" "gcc" "src/codegen/CMakeFiles/glaf_codegen.dir/opencl.cpp.o.d"
  "/root/repo/src/codegen/report.cpp" "src/codegen/CMakeFiles/glaf_codegen.dir/report.cpp.o" "gcc" "src/codegen/CMakeFiles/glaf_codegen.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/glaf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/glaf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/glaf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
