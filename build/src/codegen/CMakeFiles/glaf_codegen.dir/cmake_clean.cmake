file(REMOVE_RECURSE
  "CMakeFiles/glaf_codegen.dir/c.cpp.o"
  "CMakeFiles/glaf_codegen.dir/c.cpp.o.d"
  "CMakeFiles/glaf_codegen.dir/directive_policy.cpp.o"
  "CMakeFiles/glaf_codegen.dir/directive_policy.cpp.o.d"
  "CMakeFiles/glaf_codegen.dir/emitter.cpp.o"
  "CMakeFiles/glaf_codegen.dir/emitter.cpp.o.d"
  "CMakeFiles/glaf_codegen.dir/fortran.cpp.o"
  "CMakeFiles/glaf_codegen.dir/fortran.cpp.o.d"
  "CMakeFiles/glaf_codegen.dir/opencl.cpp.o"
  "CMakeFiles/glaf_codegen.dir/opencl.cpp.o.d"
  "CMakeFiles/glaf_codegen.dir/report.cpp.o"
  "CMakeFiles/glaf_codegen.dir/report.cpp.o.d"
  "libglaf_codegen.a"
  "libglaf_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
