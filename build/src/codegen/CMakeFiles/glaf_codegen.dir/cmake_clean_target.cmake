file(REMOVE_RECURSE
  "libglaf_codegen.a"
)
