# Empty compiler generated dependencies file for glaf_fun3d.
# This may be replaced when dependencies are built.
