file(REMOVE_RECURSE
  "libglaf_fun3d.a"
)
