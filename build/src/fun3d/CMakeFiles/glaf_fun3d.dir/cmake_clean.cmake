file(REMOVE_RECURSE
  "CMakeFiles/glaf_fun3d.dir/glaf_full.cpp.o"
  "CMakeFiles/glaf_fun3d.dir/glaf_full.cpp.o.d"
  "CMakeFiles/glaf_fun3d.dir/glaf_fun3d.cpp.o"
  "CMakeFiles/glaf_fun3d.dir/glaf_fun3d.cpp.o.d"
  "CMakeFiles/glaf_fun3d.dir/mesh.cpp.o"
  "CMakeFiles/glaf_fun3d.dir/mesh.cpp.o.d"
  "CMakeFiles/glaf_fun3d.dir/recon.cpp.o"
  "CMakeFiles/glaf_fun3d.dir/recon.cpp.o.d"
  "libglaf_fun3d.a"
  "libglaf_fun3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_fun3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
