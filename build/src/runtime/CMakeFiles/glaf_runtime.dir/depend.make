# Empty dependencies file for glaf_runtime.
# This may be replaced when dependencies are built.
