file(REMOVE_RECURSE
  "libglaf_runtime.a"
)
