file(REMOVE_RECURSE
  "CMakeFiles/glaf_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/glaf_runtime.dir/thread_pool.cpp.o.d"
  "libglaf_runtime.a"
  "libglaf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
