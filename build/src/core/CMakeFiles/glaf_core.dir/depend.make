# Empty dependencies file for glaf_core.
# This may be replaced when dependencies are built.
