file(REMOVE_RECURSE
  "CMakeFiles/glaf_core.dir/builder.cpp.o"
  "CMakeFiles/glaf_core.dir/builder.cpp.o.d"
  "CMakeFiles/glaf_core.dir/expr.cpp.o"
  "CMakeFiles/glaf_core.dir/expr.cpp.o.d"
  "CMakeFiles/glaf_core.dir/grid.cpp.o"
  "CMakeFiles/glaf_core.dir/grid.cpp.o.d"
  "CMakeFiles/glaf_core.dir/libfuncs.cpp.o"
  "CMakeFiles/glaf_core.dir/libfuncs.cpp.o.d"
  "CMakeFiles/glaf_core.dir/program.cpp.o"
  "CMakeFiles/glaf_core.dir/program.cpp.o.d"
  "CMakeFiles/glaf_core.dir/serialize.cpp.o"
  "CMakeFiles/glaf_core.dir/serialize.cpp.o.d"
  "CMakeFiles/glaf_core.dir/stmt.cpp.o"
  "CMakeFiles/glaf_core.dir/stmt.cpp.o.d"
  "CMakeFiles/glaf_core.dir/typecheck.cpp.o"
  "CMakeFiles/glaf_core.dir/typecheck.cpp.o.d"
  "CMakeFiles/glaf_core.dir/types.cpp.o"
  "CMakeFiles/glaf_core.dir/types.cpp.o.d"
  "CMakeFiles/glaf_core.dir/validate.cpp.o"
  "CMakeFiles/glaf_core.dir/validate.cpp.o.d"
  "libglaf_core.a"
  "libglaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
