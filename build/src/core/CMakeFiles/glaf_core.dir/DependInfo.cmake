
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cpp" "src/core/CMakeFiles/glaf_core.dir/builder.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/builder.cpp.o.d"
  "/root/repo/src/core/expr.cpp" "src/core/CMakeFiles/glaf_core.dir/expr.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/expr.cpp.o.d"
  "/root/repo/src/core/grid.cpp" "src/core/CMakeFiles/glaf_core.dir/grid.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/grid.cpp.o.d"
  "/root/repo/src/core/libfuncs.cpp" "src/core/CMakeFiles/glaf_core.dir/libfuncs.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/libfuncs.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/glaf_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/program.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/glaf_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/stmt.cpp" "src/core/CMakeFiles/glaf_core.dir/stmt.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/stmt.cpp.o.d"
  "/root/repo/src/core/typecheck.cpp" "src/core/CMakeFiles/glaf_core.dir/typecheck.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/typecheck.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/glaf_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/types.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/glaf_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/glaf_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/glaf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
