file(REMOVE_RECURSE
  "libglaf_core.a"
)
