file(REMOVE_RECURSE
  "libglaf_perfmodel.a"
)
