file(REMOVE_RECURSE
  "CMakeFiles/glaf_perfmodel.dir/calibrate.cpp.o"
  "CMakeFiles/glaf_perfmodel.dir/calibrate.cpp.o.d"
  "CMakeFiles/glaf_perfmodel.dir/fun3d_model.cpp.o"
  "CMakeFiles/glaf_perfmodel.dir/fun3d_model.cpp.o.d"
  "CMakeFiles/glaf_perfmodel.dir/machine_model.cpp.o"
  "CMakeFiles/glaf_perfmodel.dir/machine_model.cpp.o.d"
  "CMakeFiles/glaf_perfmodel.dir/sarb_model.cpp.o"
  "CMakeFiles/glaf_perfmodel.dir/sarb_model.cpp.o.d"
  "libglaf_perfmodel.a"
  "libglaf_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
