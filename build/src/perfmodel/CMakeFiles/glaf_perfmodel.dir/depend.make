# Empty dependencies file for glaf_perfmodel.
# This may be replaced when dependencies are built.
