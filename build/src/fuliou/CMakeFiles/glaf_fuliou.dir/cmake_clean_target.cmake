file(REMOVE_RECURSE
  "libglaf_fuliou.a"
)
