# Empty compiler generated dependencies file for glaf_fuliou.
# This may be replaced when dependencies are built.
