file(REMOVE_RECURSE
  "CMakeFiles/glaf_fuliou.dir/glaf_kernels.cpp.o"
  "CMakeFiles/glaf_fuliou.dir/glaf_kernels.cpp.o.d"
  "CMakeFiles/glaf_fuliou.dir/harness.cpp.o"
  "CMakeFiles/glaf_fuliou.dir/harness.cpp.o.d"
  "CMakeFiles/glaf_fuliou.dir/profile.cpp.o"
  "CMakeFiles/glaf_fuliou.dir/profile.cpp.o.d"
  "CMakeFiles/glaf_fuliou.dir/reference.cpp.o"
  "CMakeFiles/glaf_fuliou.dir/reference.cpp.o.d"
  "CMakeFiles/glaf_fuliou.dir/zones.cpp.o"
  "CMakeFiles/glaf_fuliou.dir/zones.cpp.o.d"
  "libglaf_fuliou.a"
  "libglaf_fuliou.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glaf_fuliou.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
