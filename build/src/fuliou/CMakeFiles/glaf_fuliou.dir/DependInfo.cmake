
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuliou/glaf_kernels.cpp" "src/fuliou/CMakeFiles/glaf_fuliou.dir/glaf_kernels.cpp.o" "gcc" "src/fuliou/CMakeFiles/glaf_fuliou.dir/glaf_kernels.cpp.o.d"
  "/root/repo/src/fuliou/harness.cpp" "src/fuliou/CMakeFiles/glaf_fuliou.dir/harness.cpp.o" "gcc" "src/fuliou/CMakeFiles/glaf_fuliou.dir/harness.cpp.o.d"
  "/root/repo/src/fuliou/profile.cpp" "src/fuliou/CMakeFiles/glaf_fuliou.dir/profile.cpp.o" "gcc" "src/fuliou/CMakeFiles/glaf_fuliou.dir/profile.cpp.o.d"
  "/root/repo/src/fuliou/reference.cpp" "src/fuliou/CMakeFiles/glaf_fuliou.dir/reference.cpp.o" "gcc" "src/fuliou/CMakeFiles/glaf_fuliou.dir/reference.cpp.o.d"
  "/root/repo/src/fuliou/zones.cpp" "src/fuliou/CMakeFiles/glaf_fuliou.dir/zones.cpp.o" "gcc" "src/fuliou/CMakeFiles/glaf_fuliou.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/glaf_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/glaf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/glaf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/glaf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/glaf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/glaf_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
