file(REMOVE_RECURSE
  "CMakeFiles/ablation_realloc.dir/ablation_realloc.cpp.o"
  "CMakeFiles/ablation_realloc.dir/ablation_realloc.cpp.o.d"
  "ablation_realloc"
  "ablation_realloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_realloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
