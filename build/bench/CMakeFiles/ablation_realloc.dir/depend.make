# Empty dependencies file for ablation_realloc.
# This may be replaced when dependencies are built.
