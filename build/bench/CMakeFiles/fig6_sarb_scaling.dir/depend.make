# Empty dependencies file for fig6_sarb_scaling.
# This may be replaced when dependencies are built.
