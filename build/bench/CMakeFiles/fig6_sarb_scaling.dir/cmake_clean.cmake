file(REMOVE_RECURSE
  "CMakeFiles/fig6_sarb_scaling.dir/fig6_sarb_scaling.cpp.o"
  "CMakeFiles/fig6_sarb_scaling.dir/fig6_sarb_scaling.cpp.o.d"
  "fig6_sarb_scaling"
  "fig6_sarb_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sarb_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
