# Empty compiler generated dependencies file for fig7_fun3d.
# This may be replaced when dependencies are built.
