
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_collapse.cpp" "bench/CMakeFiles/ablation_collapse.dir/ablation_collapse.cpp.o" "gcc" "bench/CMakeFiles/ablation_collapse.dir/ablation_collapse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/glaf_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/fuliou/CMakeFiles/glaf_fuliou.dir/DependInfo.cmake"
  "/root/repo/build/src/fun3d/CMakeFiles/glaf_fun3d.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/glaf_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/glaf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/glaf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/glaf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/glaf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/glaf_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
