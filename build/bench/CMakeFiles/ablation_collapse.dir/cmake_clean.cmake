file(REMOVE_RECURSE
  "CMakeFiles/ablation_collapse.dir/ablation_collapse.cpp.o"
  "CMakeFiles/ablation_collapse.dir/ablation_collapse.cpp.o.d"
  "ablation_collapse"
  "ablation_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
