# Empty compiler generated dependencies file for ablation_collapse.
# This may be replaced when dependencies are built.
