file(REMOVE_RECURSE
  "CMakeFiles/table1_sloc.dir/table1_sloc.cpp.o"
  "CMakeFiles/table1_sloc.dir/table1_sloc.cpp.o.d"
  "table1_sloc"
  "table1_sloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
