# Empty dependencies file for fun3d_jacobian.
# This may be replaced when dependencies are built.
