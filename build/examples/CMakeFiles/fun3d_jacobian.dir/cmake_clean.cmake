file(REMOVE_RECURSE
  "CMakeFiles/fun3d_jacobian.dir/fun3d_jacobian.cpp.o"
  "CMakeFiles/fun3d_jacobian.dir/fun3d_jacobian.cpp.o.d"
  "fun3d_jacobian"
  "fun3d_jacobian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fun3d_jacobian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
