# Empty dependencies file for point_charges.
# This may be replaced when dependencies are built.
