file(REMOVE_RECURSE
  "CMakeFiles/point_charges.dir/point_charges.cpp.o"
  "CMakeFiles/point_charges.dir/point_charges.cpp.o.d"
  "point_charges"
  "point_charges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_charges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
