# Empty compiler generated dependencies file for synoptic_hour.
# This may be replaced when dependencies are built.
