file(REMOVE_RECURSE
  "CMakeFiles/synoptic_hour.dir/synoptic_hour.cpp.o"
  "CMakeFiles/synoptic_hour.dir/synoptic_hour.cpp.o.d"
  "synoptic_hour"
  "synoptic_hour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synoptic_hour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
