file(REMOVE_RECURSE
  "CMakeFiles/codegen_tour.dir/codegen_tour.cpp.o"
  "CMakeFiles/codegen_tour.dir/codegen_tour.cpp.o.d"
  "codegen_tour"
  "codegen_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
