file(REMOVE_RECURSE
  "CMakeFiles/sarb_integration.dir/sarb_integration.cpp.o"
  "CMakeFiles/sarb_integration.dir/sarb_integration.cpp.o.d"
  "sarb_integration"
  "sarb_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarb_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
