# Empty compiler generated dependencies file for sarb_integration.
# This may be replaced when dependencies are built.
